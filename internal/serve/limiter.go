package serve

import (
	"math"

	"greennfv/internal/perfmodel"
)

// Limiter applies hysteresis and rate limiting to a stream of knob
// proposals for one node, so a noisy policy cannot thrash hardware
// states: per-interval knob deltas are capped against the node's
// last applied configuration, and changes inside a relative deadband
// hold the previous value instead of twitching the hardware.
//
// Limit computes the limited proposal; Record advances the baseline
// to the configuration actually applied — kept separate so a
// guardrail-rejected proposal never becomes the next baseline. The
// first Limit after construction or Reset passes through unmodified
// (there is nothing to rate against).
//
// Not goroutine-safe; one Limiter per node, owned by its serving loop.
type Limiter struct {
	// MaxShareStep, MaxFreqStep and MaxLLCStep cap the per-interval
	// change of the continuous knobs (absolute units: cores, GHz, LLC
	// fraction). Zero disables that knob's rate cap.
	MaxShareStep, MaxFreqStep, MaxLLCStep float64
	// MaxDMAFactor and MaxBatchFactor cap the per-interval
	// multiplicative change of the log-scaled knobs (e.g. 2 allows at
	// most doubling/halving). Values <= 1 disable the cap.
	MaxDMAFactor, MaxBatchFactor float64
	// Deadband is the relative change below which a knob holds its
	// previous value (hysteresis). Zero disables it.
	Deadband float64

	prev []perfmodel.NFKnobs // last Recorded config (nil: no baseline)
	out  []perfmodel.NFKnobs // Limit scratch
}

// DefaultLimiter returns the serving-plane limits: at most 2 cores,
// 0.3 GHz and 25% of the LLC moved per interval, at most a 4x swing
// on DMA ring and batch, and a 5% deadband.
func DefaultLimiter() *Limiter {
	return &Limiter{
		MaxShareStep:   2,
		MaxFreqStep:    0.3,
		MaxLLCStep:     0.25,
		MaxDMAFactor:   4,
		MaxBatchFactor: 4,
		Deadband:       0.05,
	}
}

// Reset forgets the baseline (the next Limit passes through). Used
// when a node re-registers after an outage.
func (l *Limiter) Reset() { l.prev = nil }

// Record sets the baseline to the configuration actually applied.
func (l *Limiter) Record(applied []perfmodel.NFKnobs) {
	if len(l.prev) != len(applied) {
		l.prev = make([]perfmodel.NFKnobs, len(applied))
	}
	copy(l.prev, applied)
}

// Limit rate-limits proposed against the recorded baseline without
// advancing it. The returned slice is limiter scratch, valid until
// the next Limit.
func (l *Limiter) Limit(proposed []perfmodel.NFKnobs) []perfmodel.NFKnobs {
	if len(l.out) != len(proposed) {
		l.out = make([]perfmodel.NFKnobs, len(proposed))
	}
	if len(l.prev) != len(proposed) {
		copy(l.out, proposed)
		return l.out
	}
	for i, p := range proposed {
		prev := l.prev[i]
		p.CPUShare = l.limitLinear(p.CPUShare, prev.CPUShare, l.MaxShareStep)
		p.FreqGHz = l.limitLinear(p.FreqGHz, prev.FreqGHz, l.MaxFreqStep)
		p.LLCFraction = l.limitLinear(p.LLCFraction, prev.LLCFraction, l.MaxLLCStep)
		p.DMABytes = int64(l.limitFactor(float64(p.DMABytes), float64(prev.DMABytes), l.MaxDMAFactor))
		p.Batch = int(math.Round(l.limitFactor(float64(p.Batch), float64(prev.Batch), l.MaxBatchFactor)))
		l.out[i] = p
	}
	return l.out
}

// limitLinear caps |v - prev| at step and applies the deadband.
func (l *Limiter) limitLinear(v, prev, step float64) float64 {
	if l.hold(v, prev) {
		return prev
	}
	if step > 0 {
		if v > prev+step {
			return prev + step
		}
		if v < prev-step {
			return prev - step
		}
	}
	return v
}

// limitFactor caps v/prev at factor (and prev/v likewise) and applies
// the deadband.
func (l *Limiter) limitFactor(v, prev, factor float64) float64 {
	if l.hold(v, prev) {
		return prev
	}
	if factor > 1 && prev > 0 {
		if v > prev*factor {
			return prev * factor
		}
		if v < prev/factor {
			return prev / factor
		}
	}
	return v
}

// hold reports whether the relative change from prev to v is inside
// the deadband.
func (l *Limiter) hold(v, prev float64) bool {
	if l.Deadband <= 0 || prev == 0 {
		return false
	}
	return math.Abs(v-prev) <= l.Deadband*math.Abs(prev)
}
