package serve

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"greennfv/internal/control"
	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/apex"
	"greennfv/internal/rpcutil"
	"greennfv/internal/stats"
)

// NodeConfig assembles a NodeAgent.
type NodeConfig struct {
	// NodeID names this node to the controller.
	NodeID string
	// ControllerAddr is the controller's RPC address.
	ControllerAddr string
	// Spec is the node environment contract — the same spec the
	// controller was configured with. Rank seeds this node's load
	// process (spec.EnvSeed + 131*Rank), so a fleet built from one
	// spec sees distinct traffic.
	Spec apex.ActorSpec
	Rank int
	// CallTimeout bounds each controller RPC (0: DefaultCallTimeout).
	CallTimeout time.Duration
	// StaleAfter bounds how long the agent trusts its last-known-good
	// config without hearing from the controller; past it the ladder
	// drops straight to the heuristic fallback. Zero defaults to 30s.
	StaleAfter time.Duration
}

// NodeAgent is the per-node speaker: it observes its local dataplane
// (the env standing in for one chain-hosting server), reports to the
// controller, and applies vetted knob configs — degrading to local
// rungs of the ladder whenever the controller is unreachable, its
// lease is lost, or nothing the controller sent survives the local
// guardrail re-check. It never applies a config the guardrail has not
// approved; with every rung exhausted it holds the current one.
//
// Not goroutine-safe: one serving loop owns the agent. Run drives it
// on a ticker; tests call Step directly.
type NodeAgent struct {
	cfg      NodeConfig
	env      *env.Env
	guard    Guardrail
	fallback *control.Heuristic
	counters *stats.Counters

	conn        *rpcutil.Conn
	epoch       uint64
	registered  bool
	fenced      bool
	lastGood    []perfmodel.NFKnobs
	lastContact time.Time
	mode        string
	result      perfmodel.Result
	obs         []float64

	// policyVersion is the controller's policy version as of the last
	// successful contact. Atomic: the metrics endpoint reads it while
	// the serving loop writes it.
	policyVersion atomic.Int64
}

// NewNodeAgent builds the agent and its local environment.
func NewNodeAgent(cfg NodeConfig) (*NodeAgent, error) {
	if cfg.NodeID == "" {
		return nil, errors.New("serve: node agent needs a NodeID")
	}
	if cfg.ControllerAddr == "" {
		return nil, errors.New("serve: node agent needs a controller address")
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 30 * time.Second
	}
	e, err := cfg.Spec.BuildEnv(cfg.Rank)
	if err != nil {
		return nil, fmt.Errorf("serve: node env: %w", err)
	}
	return &NodeAgent{
		cfg: cfg,
		env: e,
		guard: Guardrail{
			Model:  perfmodel.Default(),
			Chain:  e.Chain(),
			Bounds: e.Bounds(),
			SLA:    e.SLA(),
		},
		fallback: control.NewHeuristic(),
		counters: stats.NewCounters(),
		obs:      make([]float64, e.StateDim()),
		mode:     SourceHold,
	}, nil
}

// Mode reports the ladder rung that produced the last applied config
// (SourcePolicy, SourceLastGood, SourceFallback or SourceHold).
func (a *NodeAgent) Mode() string { return a.mode }

// LastResult reports the node's most recent measurement.
func (a *NodeAgent) LastResult() perfmodel.Result { return a.result }

// Counters exposes the agent's serving ledger.
func (a *NodeAgent) Counters() *stats.Counters { return a.counters }

// Env exposes the node's environment (tests observe applied knobs
// through it).
func (a *NodeAgent) Env() *env.Env { return a.env }

// PolicyVersion reports the controller's policy version as of the
// last successful contact (0 before the first register). Safe to read
// concurrently with the serving loop.
func (a *NodeAgent) PolicyVersion() int { return int(a.policyVersion.Load()) }

// RegisterMetrics exposes the agent on a Prometheus registry: every
// serving counter as `greennfv_agent_<name>_total` plus the
// last-observed policy-version gauge.
func (a *NodeAgent) RegisterMetrics(reg *stats.Registry) {
	reg.RegisterCounterSet("greennfv_agent", "Node-agent serving events.", a.counters)
	reg.RegisterGauge("greennfv_agent_policy_version",
		"Controller policy version at last successful contact.",
		func() float64 { return float64(a.policyVersion.Load()) })
}

// Close releases the controller connection.
func (a *NodeAgent) Close() error {
	a.dropConn()
	return nil
}

// dropConn tears down the controller connection so the next step
// redials; the lease survives (the controller fences by epoch, not by
// connection).
func (a *NodeAgent) dropConn() {
	if a.conn != nil {
		a.conn.Close()
		a.conn = nil
	}
}

// ensureRegistered dials and registers if needed.
func (a *NodeAgent) ensureRegistered() error {
	if a.conn == nil {
		conn, err := rpcutil.Dial(a.cfg.ControllerAddr, a.cfg.CallTimeout)
		if err != nil {
			return err
		}
		a.conn = conn
	}
	if a.registered {
		return nil
	}
	var reply RegisterNodeReply
	if err := a.conn.Call("Controller.Register", &RegisterNodeArgs{NodeID: a.cfg.NodeID}, &reply); err != nil {
		a.dropConn()
		return err
	}
	a.epoch = reply.Epoch
	a.registered = true
	a.policyVersion.Store(int64(reply.PolicyVersion))
	return nil
}

// Step runs one control interval at time now: observe, report, apply
// the best vetted config the ladder yields. The returned error is
// advisory (the degraded path it fell back to); the node has applied
// a safe configuration — or held — regardless.
func (a *NodeAgent) Step(now time.Time) error {
	if a.fenced {
		return fmt.Errorf("serve: node %q fenced: %w", a.cfg.NodeID, ErrStaleNodeEpoch)
	}
	a.env.ObserveInto(a.obs)
	tr := a.env.LastTraffic()

	remoteErr := a.stepRemote(now, tr)
	if remoteErr == nil {
		return nil
	}
	if a.fenced {
		// A replacement instance owns this node; do not touch it, not
		// even with local rungs.
		a.mode = SourceHold
		return remoteErr
	}
	a.stepLocal(now, tr)
	return remoteErr
}

// stepRemote reports to the controller and applies its config. A nil
// return means a config was applied (any rung); an error means the
// local ladder must take over this interval.
func (a *NodeAgent) stepRemote(now time.Time, tr perfmodel.Traffic) error {
	if err := a.ensureRegistered(); err != nil {
		a.counters.Inc(CounterHeartbeatMisses)
		return err
	}
	var reply ReportReply
	err := a.conn.Call("Controller.Report", &ReportArgs{
		NodeID:  a.cfg.NodeID,
		Epoch:   a.epoch,
		Obs:     a.obs,
		Traffic: tr,
	}, &reply)
	switch {
	case err == nil:
	case IsUnregisteredNode(err):
		// Lease expired or controller restarted: re-register next
		// interval.
		a.registered = false
		a.counters.Inc(CounterHeartbeatMisses)
		return err
	case IsStaleNodeEpoch(err):
		// A replacement agent owns this node now; stop driving it.
		a.registered = false
		a.fenced = true
		return err
	default:
		// Transport failure: redial next interval.
		a.dropConn()
		a.registered = false
		a.counters.Inc(CounterHeartbeatMisses)
		return err
	}
	a.lastContact = now
	a.policyVersion.Store(int64(reply.PolicyVersion))
	if reply.Hold {
		return errors.New("serve: controller held")
	}
	// Defense in depth: the controller vetted this config, but the
	// agent re-checks against its own model before touching hardware.
	if _, err := a.guard.Check(reply.Config, tr); err != nil {
		a.counters.Inc(CounterGuardrailRejections)
		return err
	}
	a.apply(reply.Config, reply.Source)
	return nil
}

// stepLocal walks the local rungs: last-known-good (while not stale),
// heuristic fallback, hold.
func (a *NodeAgent) stepLocal(now time.Time, tr perfmodel.Traffic) {
	a.counters.Inc(CounterFallbackActivations)
	if a.lastGood != nil && now.Sub(a.lastContact) < a.cfg.StaleAfter {
		if _, err := a.guard.Check(a.lastGood, tr); err == nil {
			a.apply(a.lastGood, SourceLastGood)
			return
		}
		a.counters.Inc(CounterGuardrailRejections)
	}
	if ks := a.fallback.Propose(a.env); ks != nil {
		if _, err := a.guard.Check(ks, tr); err == nil {
			a.apply(ks, SourceFallback)
			return
		}
		a.counters.Inc(CounterGuardrailRejections)
	}
	// Every rung exhausted: hold the current configuration (already
	// vetted when applied) rather than emit anything unvetted.
	a.mode = SourceHold
	res, err := a.env.SetKnobs(a.env.Knobs())
	if err == nil {
		a.result = res
	}
}

// apply installs a vetted config on the node and records it as
// last-known-good.
func (a *NodeAgent) apply(ks []perfmodel.NFKnobs, source string) {
	res, err := a.env.SetKnobs(ks)
	if err != nil {
		// Length mismatches are caught by the guardrail; treat an
		// apply failure as a hold.
		a.mode = SourceHold
		return
	}
	a.result = res
	a.mode = source
	a.lastGood = append(a.lastGood[:0], ks...)
	a.counters.Inc(CounterConfigsPushed)
}

// Run drives Step on a ticker until stop closes. RPC errors degrade
// the node (Step already fell back); they do not end the loop.
func (a *NodeAgent) Run(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case t := <-ticker.C:
			a.Step(t)
		}
	}
}
