package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"greennfv/internal/atomicio"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/apex"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

// testSpec is the node contract the serving tests share: the standard
// three-NF chain on the paper's workload, no load jitter (so the
// guardrail's prediction equals the node's measurement and the SLA
// property can be asserted exactly).
func testSpec(s sla.SLA) apex.ActorSpec {
	return apex.ActorSpec{SLA: s, EnvSeed: 42}
}

// writePolicy saves an untrained (random-weight — the noisiest policy
// there is) agent checkpoint sized for spec, returning its path.
func writePolicy(t testing.TB, dir string, spec apex.ActorSpec, seed int64) string {
	t.Helper()
	e, err := spec.BuildEnv(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ddpg.DefaultConfig(e.StateDim(), e.ActionDim())
	cfg.Hidden = []int{16, 16}
	cfg.Seed = seed
	agent, err := ddpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := agent.StateBytes(false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "policy.ckpt")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// startController builds and starts a controller for spec on an
// ephemeral port.
func startController(t testing.TB, cfg Config) *Controller {
	t.Helper()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// inBounds reports whether every knob set lies inside b.
func inBounds(ks []perfmodel.NFKnobs, b perfmodel.KnobBounds) bool {
	for _, k := range ks {
		if k != b.Clamp(k) {
			return false
		}
	}
	return true
}

// TestServePolicyEndToEnd drives one agent against a live controller:
// configs arrive from the policy rung, stay in bounds, and the
// counters account for them.
func TestServePolicyEndToEnd(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	ctrl := startController(t, Config{
		Spec:       spec,
		PolicyPath: writePolicy(t, dir, spec, 1),
	})
	agent, err := NewNodeAgent(NodeConfig{
		NodeID: "node-a", ControllerAddr: ctrl.Addr(), Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	now := time.Now()
	for i := 0; i < 5; i++ {
		if err := agent.Step(now.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if agent.Mode() != SourcePolicy {
			t.Fatalf("step %d: mode %q, want %q", i, agent.Mode(), SourcePolicy)
		}
		if ks := agent.Env().Knobs(); !inBounds(ks, agent.Env().Bounds()) {
			t.Fatalf("step %d: applied knobs out of bounds: %+v", i, ks)
		}
	}
	if got := ctrl.Counters().Get(CounterConfigsPushed); got != 5 {
		t.Errorf("controller pushed %d configs, want 5", got)
	}
	if got := agent.Counters().Get(CounterConfigsPushed); got != 5 {
		t.Errorf("agent applied %d configs, want 5", got)
	}
	if got := ctrl.Counters().Get(CounterGuardrailRejections); got != 0 {
		t.Errorf("unexpected guardrail rejections: %d", got)
	}
}

// TestGuardrailProperty is the serving-plane safety invariant: over
// many intervals under a constrained SLA and an untrained (noisy)
// policy, every configuration the node applies is inside the knob
// bounds, and every interval that applied one (any rung) has a
// measurement satisfying the SLA — nothing guardrail-rejected ever
// reaches the node. Jitter-free traffic makes prediction equal
// measurement, so the assertion is exact.
func TestGuardrailProperty(t *testing.T) {
	budget, err := sla.NewMaxThroughput(2600)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spec := testSpec(budget)
	ctrl := startController(t, Config{
		Spec:       spec,
		PolicyPath: writePolicy(t, dir, spec, 2),
	})
	agent, err := NewNodeAgent(NodeConfig{
		NodeID: "node-a", ControllerAddr: ctrl.Addr(), Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	applied := 0
	now := time.Now()
	for i := 0; i < 60; i++ {
		agent.Step(now.Add(time.Duration(i) * time.Second)) // degraded intervals are allowed
		if ks := agent.Env().Knobs(); !inBounds(ks, agent.Env().Bounds()) {
			t.Fatalf("step %d: knobs out of bounds: %+v", i, ks)
		}
		if agent.Mode() != SourceHold {
			applied++
			res := agent.LastResult()
			if !budget.Satisfied(res.ThroughputGbps, res.EnergyJoules) {
				t.Fatalf("step %d (%s): applied config violates SLA: %.2f Gbps %.0f J",
					i, agent.Mode(), res.ThroughputGbps, res.EnergyJoules)
			}
		}
	}
	if applied == 0 {
		t.Fatal("no interval applied a config; property vacuous")
	}
}

// TestLimiter pins rate caps and hysteresis: pass-through first, caps
// on big jumps, deadband holds on small ones.
func TestLimiter(t *testing.T) {
	l := DefaultLimiter()
	first := []perfmodel.NFKnobs{{CPUShare: 1, FreqGHz: 1.5, LLCFraction: 0.5, DMABytes: 4 << 20, Batch: 8}}
	if got := l.Limit(first); got[0] != first[0] {
		t.Fatalf("first Limit altered the proposal: %+v", got[0])
	}
	l.Record(first)

	jump := []perfmodel.NFKnobs{{CPUShare: 4, FreqGHz: 2.1, LLCFraction: 1.0, DMABytes: 40 << 20, Batch: 256}}
	got := l.Limit(jump)[0]
	if got.CPUShare != 3 {
		t.Errorf("share step: got %v, want 3 (1+2)", got.CPUShare)
	}
	if got.FreqGHz != 1.8 {
		t.Errorf("freq step: got %v, want 1.8 (1.5+0.3)", got.FreqGHz)
	}
	if got.LLCFraction != 0.75 {
		t.Errorf("llc step: got %v, want 0.75 (0.5+0.25)", got.LLCFraction)
	}
	if got.DMABytes != 16<<20 {
		t.Errorf("dma factor: got %d, want %d (4x)", got.DMABytes, int64(16<<20))
	}
	if got.Batch != 32 {
		t.Errorf("batch factor: got %d, want 32 (4x)", got.Batch)
	}

	// Small wiggles inside the 5% deadband hold the baseline exactly.
	wiggle := []perfmodel.NFKnobs{{CPUShare: 1.04, FreqGHz: 1.52, LLCFraction: 0.49, DMABytes: 4<<20 + 1000, Batch: 8}}
	if got := l.Limit(wiggle)[0]; got != first[0] {
		t.Errorf("deadband did not hold: %+v vs %+v", got, first[0])
	}

	// A guardrail-rejected proposal must not move the baseline: Limit
	// again without Record and the caps still rate against `first`.
	if got := l.Limit(jump)[0]; got.FreqGHz != 1.8 {
		t.Errorf("baseline moved without Record: freq %v, want 1.8", got.FreqGHz)
	}
	l.Reset()
	if got := l.Limit(jump)[0]; got != jump[0] {
		t.Errorf("post-Reset Limit altered the proposal: %+v", got)
	}
}

// TestLeaseFencing pins the zombie-fencing story: a second
// registration for the same node supersedes the first (stale epoch is
// fatal), and an expired lease forces a transparent re-register.
// Lease expiry runs on the injected controller clock — deterministic,
// no sleeps.
func TestLeaseFencing(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	clk := newFakeClock(time.Unix(1700000000, 0))
	ctrl := startController(t, Config{
		Spec:        spec,
		PolicyPath:  writePolicy(t, dir, spec, 3),
		LeaseWindow: 10 * time.Second,
		Now:         clk.Now,
	})
	mk := func() *NodeAgent {
		a, err := NewNodeAgent(NodeConfig{
			NodeID: "node-a", ControllerAddr: ctrl.Addr(), Spec: spec,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		return a
	}
	now := time.Now()
	old := mk()
	if err := old.Step(now); err != nil {
		t.Fatal(err)
	}
	// A replacement registers; the old instance's epoch is superseded.
	repl := mk()
	if err := repl.Step(now); err != nil {
		t.Fatal(err)
	}
	err := old.Step(now.Add(time.Second))
	if !IsStaleNodeEpoch(err) {
		t.Fatalf("zombie step error = %v, want stale epoch", err)
	}
	if old.Mode() == SourcePolicy {
		t.Error("fenced zombie still applying policy configs")
	}

	// Let the replacement's lease expire by advancing the injected
	// clock past the lease window; its next step re-registers
	// transparently (one degraded interval, then fresh policy again).
	clk.Advance(11 * time.Second)
	if n := ctrl.ExpireLeases(clk.Now()); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	if got := ctrl.Counters().Get(CounterHeartbeatMisses); got != 1 {
		t.Errorf("heartbeat misses = %d, want 1", got)
	}
	if err := repl.Step(now.Add(2 * time.Second)); !IsUnregisteredNode(err) {
		t.Fatalf("post-expiry step error = %v, want unregistered", err)
	}
	if err := repl.Step(now.Add(3 * time.Second)); err != nil {
		t.Fatalf("re-registered step: %v", err)
	}
	if repl.Mode() != SourcePolicy {
		t.Errorf("post-re-register mode %q, want policy", repl.Mode())
	}
}

// TestHotReload pins hot policy reload: a valid checkpoint swaps in
// (version bump), a corrupt one is rejected loudly while serving
// continues on the old policy.
func TestHotReload(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	ctrl := startController(t, Config{
		Spec:       spec,
		PolicyPath: writePolicy(t, dir, spec, 4),
	})
	if v := ctrl.PolicyVersion(); v != 1 {
		t.Fatalf("boot policy version %d, want 1", v)
	}
	if err := ctrl.ReloadPolicy(writePolicy(t, t.TempDir(), spec, 5)); err != nil {
		t.Fatalf("valid reload: %v", err)
	}
	if v := ctrl.PolicyVersion(); v != 2 {
		t.Fatalf("post-reload version %d, want 2", v)
	}

	// Corrupt checkpoint: flip bytes mid-blob.
	bad := filepath.Join(dir, "bad.ckpt")
	blob, err := os.ReadFile(filepath.Join(dir, "policy.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for i := len(blob) / 2; i < len(blob)/2+64 && i < len(blob); i++ {
		blob[i] ^= 0xFF
	}
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ReloadPolicy(bad); err == nil {
		t.Fatal("corrupt reload accepted")
	}
	if v := ctrl.PolicyVersion(); v != 2 {
		t.Errorf("corrupt reload changed version to %d", v)
	}
	// A dimension-mismatched (but decodable) checkpoint is rejected
	// too.
	other := testSpec(sla.NewEnergyEfficiency())
	other.Chain = "light" // 2 NFs: different state/action dims
	if err := ctrl.ReloadPolicy(writePolicy(t, t.TempDir(), other, 6)); err == nil {
		t.Fatal("dimension-mismatched reload accepted")
	}

	// Serving still works after the rejected reloads.
	agent, err := NewNodeAgent(NodeConfig{
		NodeID: "node-a", ControllerAddr: ctrl.Addr(), Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if err := agent.Step(time.Now()); err != nil {
		t.Fatalf("serving after rejected reload: %v", err)
	}
}

// TestControllerStatePersistence pins crash-safe state: a controller
// restarted from its state file resumes the hot-reloaded policy
// version and the fleet's last-known-good configs, and sweeps temp
// droppings a crashed writer left behind.
func TestControllerStatePersistence(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	statePath := filepath.Join(dir, "controller.state")
	cfg := Config{
		Spec:       spec,
		PolicyPath: writePolicy(t, dir, spec, 7),
		StatePath:  statePath,
	}
	ctrl := startController(t, cfg)
	agent, err := NewNodeAgent(NodeConfig{
		NodeID: "node-a", ControllerAddr: ctrl.Addr(), Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if err := agent.Step(time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ReloadPolicy(writePolicy(t, t.TempDir(), spec, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crashed writer's leftover temp next to the state.
	if err := os.WriteFile(filepath.Join(dir, ".controller.state.tmp-999"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctrl2, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl2.Close()
	if v := ctrl2.PolicyVersion(); v != 2 {
		t.Errorf("restarted version %d, want 2 (hot reload persisted)", v)
	}
	if ctrl2.LastGood("node-a") == nil {
		t.Error("restart lost node-a's last-known-good config")
	}
	if stray, _ := atomicio.StrayTemps(statePath); len(stray) != 0 {
		t.Errorf("restart left stray temps: %v", stray)
	}
}
