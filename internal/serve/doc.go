// Package serve is the policy-serving control plane: the runtime that
// takes a trained GreenNFV policy out of the test harness and puts it
// in front of live traffic, in the controller/speaker split of
// metallb — one controller daemon (cmd/greennfvd) holding the policy,
// one node agent (cmd/greennfv-agent) per chain-hosting server
// applying knob configurations to its local dataplane.
//
// # Topology and protocol
//
// Node agents register with the controller over net/rpc (rpcutil) and
// then report each control interval: observation vector, offered
// traffic, last measurement. The controller answers with the next
// knob configuration — the policy's greedy action decoded to knobs,
// rate-limited against the node's previous configuration and vetted
// by the SLA guardrail. Registration issues a per-node lease epoch
// (the zombie-fencing pattern of the training plane): reports from a
// superseded epoch are rejected fatally, reports from an unknown node
// are rejected retryably, and a controller restart simply makes the
// fleet re-register.
//
// # Safety invariant
//
// No config is ever applied that is outside the knob bounds or that
// the performance model predicts would violate the node's SLA. Every
// proposal — from the policy, the last-known-good store, or the
// heuristic fallback — passes through a Guardrail before it touches a
// node; a proposal that fails every rung makes the agent hold its
// current configuration rather than apply something unvetted. The
// guardrail property test pins this invariant; the chaos e2e pins it
// under partition, controller kill and corrupt reload.
//
// # Degradation ladder
//
// Fresh policy → last-known-good config → heuristic fallback
// (control.Heuristic, Algorithm 1) → hold. The controller walks the
// ladder when the guardrail rejects the policy's proposal; the agent
// walks it locally when the controller is unreachable or its configs
// have gone stale, so a partitioned node keeps serving safely and
// reconverges to policy-driven configs within one heartbeat window of
// the partition healing.
//
// # Sharding and the report fast path
//
// The controller is built to take a whole fleet reporting at once.
// Per-node state lives in lock-striped shards (FNV-1a of the node ID
// over a fixed shard count); a shard's mutex guards only its lookup
// maps, while each node record carries its own mutex for the serving
// decision — so two nodes never contend, even hash neighbours. The
// policy sits behind an atomically swapped immutable snapshot:
// reports read it lock-free, and only ReloadPolicy takes the writer
// path (validate, then swap a new snapshot with a bumped version).
// Each in-flight report draws pooled inference scratch — a private
// policy replica plus action/knob buffers — because the DDPG actor's
// forward pass reuses per-agent scratch and cannot be shared. The
// greedy action consumes no randomness, so a node's decision depends
// only on its own history and the snapshot: concurrent serving is
// bit-for-bit identical to serial (the fleet harness pins this).
//
// # Metrics
//
// Controller and agent expose their serving ledgers for Prometheus
// through stats.Registry: every counter as
// greennfv_serve_<name>_total / greennfv_agent_<name>_total, gauges
// for registered nodes and policy version, and a report-latency
// histogram (greennfv_serve_report_latency_seconds). Conservation
// laws tie the counters together: configs_pushed equals the policy-
// plus last-good-sourced replies, and fallback_activations counts
// only holds (a last-good recovery is a push, not a fallback). Both
// daemons serve the registry at /metrics (-metrics flag).
//
// # Crash safety
//
// Controller state — the current policy blob, its version, and each
// node's last-known-good config — persists through atomicio (magic
// "GNFVSRV1", temp+fsync+rename, CRC). A restarted controller resumes
// with the policy it was last serving (hot reloads included) and the
// fleet re-registers transparently. Hot policy reload validates the
// new checkpoint (dimensions against the node spec, decodable agent)
// before an atomic swap; a corrupt or mismatched checkpoint is
// rejected loudly without dropping the serving loop.
package serve
