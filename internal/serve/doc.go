// Package serve is the policy-serving control plane: the runtime that
// takes a trained GreenNFV policy out of the test harness and puts it
// in front of live traffic, in the controller/speaker split of
// metallb — one controller daemon (cmd/greennfvd) holding the policy,
// one node agent (cmd/greennfv-agent) per chain-hosting server
// applying knob configurations to its local dataplane.
//
// # Topology and protocol
//
// Node agents register with the controller over net/rpc (rpcutil) and
// then report each control interval: observation vector, offered
// traffic, last measurement. The controller answers with the next
// knob configuration — the policy's greedy action decoded to knobs,
// rate-limited against the node's previous configuration and vetted
// by the SLA guardrail. Registration issues a per-node lease epoch
// (the zombie-fencing pattern of the training plane): reports from a
// superseded epoch are rejected fatally, reports from an unknown node
// are rejected retryably, and a controller restart simply makes the
// fleet re-register.
//
// # Safety invariant
//
// No config is ever applied that is outside the knob bounds or that
// the performance model predicts would violate the node's SLA. Every
// proposal — from the policy, the last-known-good store, or the
// heuristic fallback — passes through a Guardrail before it touches a
// node; a proposal that fails every rung makes the agent hold its
// current configuration rather than apply something unvetted. The
// guardrail property test pins this invariant; the chaos e2e pins it
// under partition, controller kill and corrupt reload.
//
// # Degradation ladder
//
// Fresh policy → last-known-good config → heuristic fallback
// (control.Heuristic, Algorithm 1) → hold. The controller walks the
// ladder when the guardrail rejects the policy's proposal; the agent
// walks it locally when the controller is unreachable or its configs
// have gone stale, so a partitioned node keeps serving safely and
// reconverges to policy-driven configs within one heartbeat window of
// the partition healing.
//
// # Crash safety
//
// Controller state — the current policy blob, its version, and each
// node's last-known-good config — persists through atomicio (magic
// "GNFVSRV1", temp+fsync+rename, CRC). A restarted controller resumes
// with the policy it was last serving (hot reloads included) and the
// fleet re-registers transparently. Hot policy reload validates the
// new checkpoint (dimensions against the node spec, decodable agent)
// before an atomic swap; a corrupt or mismatched checkpoint is
// rejected loudly without dropping the serving loop.
package serve
