package serve

// Fleet-scale serving harness: a deterministic, in-process fleet
// simulator for the sharded controller. 32+ node agents with seeded
// per-rank traffic drive a live controller through scripted lease
// churn, partitions (apex.FaultProxy) and hot policy reloads
// mid-storm — all on an injectable clock, under -race in CI. The
// pinned invariants:
//
//  1. Every applied config is vetted (in bounds; the guardrail
//     property test pins the SLA half).
//  2. No cross-node scratch bleed: replies from the concurrent
//     controller are bit-identical to a serial controller fed the
//     same seeded inputs (TestFleetDeterminismVsSerial).
//  3. Counters conserve: configs_pushed = policy + last-good sources
//     (and holds equal fallback activations).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"greennfv/internal/env"
	"greennfv/internal/rl/apex"
	"greennfv/internal/sla"
)

// fakeClock is a mutex-guarded manual clock for Config.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock(start time.Time) *fakeClock { return &fakeClock{t: start} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// assertCountersConserve pins invariant 3 on a controller ledger.
func assertCountersConserve(t *testing.T, c *Controller) {
	t.Helper()
	pushed := c.Counters().Get(CounterConfigsPushed)
	policy := c.Counters().Get(CounterSourcePolicy)
	lastGood := c.Counters().Get(CounterSourceLastGood)
	hold := c.Counters().Get(CounterSourceHold)
	fallback := c.Counters().Get(CounterFallbackActivations)
	if pushed != policy+lastGood {
		t.Errorf("counter conservation broken: pushed %d != policy %d + lastGood %d",
			pushed, policy, lastGood)
	}
	if fallback != hold {
		t.Errorf("fallback %d != holds %d (last-good recoveries must not count as fallback)",
			fallback, hold)
	}
	if rej := c.Counters().Get(CounterGuardrailRejections); rej < hold {
		t.Errorf("rejections %d < holds %d: every hold implies at least one rejection", rej, hold)
	}
}

// simNode drives the controller API directly (no RPC) as one node
// agent would: observe its seeded env, report, apply the vetted reply
// (or hold). Used by the determinism and conservation tests, where
// the transport would only add noise.
type simNode struct {
	id    string
	epoch uint64
	env   *env.Env
	obs   []float64
}

func newSimNode(t testing.TB, spec apex.ActorSpec, rank int) *simNode {
	t.Helper()
	e, err := spec.BuildEnv(rank)
	if err != nil {
		t.Fatal(err)
	}
	return &simNode{
		id:  fmt.Sprintf("node-%03d", rank),
		env: e,
		obs: make([]float64, e.StateDim()),
	}
}

func (n *simNode) register(c *Controller) error {
	var reply RegisterNodeReply
	if err := c.register(&RegisterNodeArgs{NodeID: n.id}, &reply); err != nil {
		return err
	}
	n.epoch = reply.Epoch
	return nil
}

// step runs one control interval and returns the controller's reply.
func (n *simNode) step(c *Controller) (ReportReply, error) {
	n.env.ObserveInto(n.obs)
	var reply ReportReply
	err := c.report(&ReportArgs{
		NodeID:  n.id,
		Epoch:   n.epoch,
		Obs:     n.obs,
		Traffic: n.env.LastTraffic(),
	}, &reply)
	if err != nil {
		return reply, err
	}
	if reply.Hold {
		_, err = n.env.SetKnobs(n.env.Knobs())
	} else {
		_, err = n.env.SetKnobs(reply.Config)
	}
	return reply, err
}

// recorded is one interval's reply, reduced to the decision fields
// that must match bit-for-bit between concurrent and serial serving.
type recorded struct {
	hold   bool
	source string
	config []knobsKey
}

// knobsKey is a comparable flattening of one NF's knobs.
type knobsKey struct {
	share, freq, llc float64
	dma              int64
	batch            int
}

func recordReply(r ReportReply) recorded {
	rec := recorded{hold: r.Hold, source: r.Source}
	for _, k := range r.Config {
		rec.config = append(rec.config, knobsKey{k.CPUShare, k.FreqGHz, k.LLCFraction, k.DMABytes, k.Batch})
	}
	return rec
}

func sameRecord(a, b recorded) bool {
	if a.hold != b.hold || a.source != b.source || len(a.config) != len(b.config) {
		return false
	}
	for i := range a.config {
		if a.config[i] != b.config[i] { // float64 ==: bit-for-bit (no NaNs in vetted knobs)
			return false
		}
	}
	return true
}

// TestFleetDeterminismVsSerial is the scratch-isolation gate: 32
// nodes storm the sharded controller concurrently, then an identical
// serial controller replays every node's recorded input sequence one
// node at a time. Per-node decisions depend only on that node's own
// history plus the immutable policy snapshot, so every reply must be
// bit-identical — any cross-node scratch bleed (shared action buffer,
// shared actor forward scratch, shared guardrail prediction) shows up
// as a float diff here, and -race catches the access itself.
func TestFleetDeterminismVsSerial(t *testing.T) {
	const fleet = 32
	const rounds = 12
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	policy := writePolicy(t, dir, spec, 21)

	run := func(concurrent bool) [][]recorded {
		ctrl, err := NewController(Config{Spec: spec, PolicyPath: policy})
		if err != nil {
			t.Fatal(err)
		}
		nodes := make([]*simNode, fleet)
		for rank := range nodes {
			nodes[rank] = newSimNode(t, spec, rank)
		}
		got := make([][]recorded, fleet)
		drive := func(rank int) {
			n := nodes[rank]
			if err := n.register(ctrl); err != nil {
				t.Errorf("%s register: %v", n.id, err)
				return
			}
			for r := 0; r < rounds; r++ {
				reply, err := n.step(ctrl)
				if err != nil {
					t.Errorf("%s round %d: %v", n.id, r, err)
					return
				}
				if !reply.Hold && !inBounds(reply.Config, n.env.Bounds()) {
					t.Errorf("%s round %d: unvetted config %+v", n.id, r, reply.Config)
				}
				got[rank] = append(got[rank], recordReply(reply))
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for rank := 0; rank < fleet; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					drive(rank)
				}(rank)
			}
			wg.Wait()
		} else {
			for rank := 0; rank < fleet; rank++ {
				drive(rank)
			}
		}
		assertCountersConserve(t, ctrl)
		return got
	}

	parallel := run(true)
	serial := run(false)
	diffs := 0
	for rank := 0; rank < fleet; rank++ {
		if len(parallel[rank]) != rounds || len(serial[rank]) != rounds {
			t.Fatalf("rank %d: %d parallel / %d serial replies, want %d",
				rank, len(parallel[rank]), len(serial[rank]), rounds)
		}
		for r := 0; r < rounds; r++ {
			if !sameRecord(parallel[rank][r], serial[rank][r]) {
				diffs++
				if diffs <= 3 {
					t.Errorf("rank %d round %d: parallel %+v != serial %+v",
						rank, r, parallel[rank][r], serial[rank][r])
				}
			}
		}
	}
	if diffs > 0 {
		t.Fatalf("%d replies differ between concurrent and serial serving", diffs)
	}
}

// TestFleetSoakStorm is the chaos soak: 32 real NodeAgents over RPC
// (half through a FaultProxy), scripted partitions, fleet-wide lease
// churn via the injected clock, and hot policy reloads mid-storm.
// Every applied config stays vetted, the fleet reconverges after each
// fault, and the controller ledger conserves.
func TestFleetSoakStorm(t *testing.T) {
	const fleet = 32
	const rounds = 30
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	clk := newFakeClock(time.Unix(1700000000, 0))
	ctrl := startController(t, Config{
		Spec:        spec,
		PolicyPath:  writePolicy(t, dir, spec, 22),
		LeaseWindow: 10 * time.Second,
		Now:         clk.Now,
	})
	proxy, err := apex.NewFaultProxy(ctrl.Addr(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	agents := make([]*NodeAgent, fleet)
	for i := range agents {
		addr := ctrl.Addr()
		if i%2 == 1 {
			addr = proxy.Addr() // odd ranks feel the partitions
		}
		a, err := NewNodeAgent(NodeConfig{
			NodeID:         fmt.Sprintf("node-%03d", i),
			ControllerAddr: addr,
			Spec:           spec,
			Rank:           i,
			CallTimeout:    250 * time.Millisecond,
			StaleAfter:     30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		agents[i] = a
	}

	stepAll := func(round int) {
		now := clk.Advance(time.Second)
		var wg sync.WaitGroup
		for i, a := range agents {
			wg.Add(1)
			go func(i int, a *NodeAgent) {
				defer wg.Done()
				a.Step(now) // degraded intervals are allowed; safety is not
				if ks := a.Env().Knobs(); !inBounds(ks, a.Env().Bounds()) {
					t.Errorf("round %d agent %d: applied knobs out of bounds: %+v", round, i, ks)
				}
			}(i, a)
		}
		wg.Wait()
	}

	for round := 0; round < rounds; round++ {
		switch round {
		case 8, 20:
			// Hot reload mid-storm: new valid policy swaps in while 32
			// reports are in flight around it.
			if err := ctrl.ReloadPolicy(writePolicy(t, t.TempDir(), spec, int64(23+round))); err != nil {
				t.Fatalf("round %d reload: %v", round, err)
			}
		case 10:
			proxy.Partition(true) // odd ranks lose the controller
		case 14:
			proxy.Partition(false)
		case 22:
			// Fleet-wide lease churn: silence long past the window, then
			// sweep. Every node must re-register transparently.
			clk.Advance(31 * time.Second)
			if n := ctrl.ExpireLeases(clk.Now()); n != fleet {
				t.Fatalf("round %d: expired %d leases, want %d", round, n, fleet)
			}
		}
		stepAll(round)
	}

	// Reconvergence: after the storm every agent is back on fresh
	// policy at the final version, holding a live lease.
	final := clk.Advance(time.Second)
	for i, a := range agents {
		if err := a.Step(final); err != nil {
			t.Errorf("final step agent %d: %v", i, err)
		}
		if a.Mode() != SourcePolicy {
			t.Errorf("agent %d mode %q after storm, want policy", i, a.Mode())
		}
		if got := a.PolicyVersion(); got != ctrl.PolicyVersion() {
			t.Errorf("agent %d sees policy v%d, controller serves v%d", i, got, ctrl.PolicyVersion())
		}
	}
	if got := ctrl.RegisteredNodes(); got != fleet {
		t.Errorf("registered nodes = %d, want %d", got, fleet)
	}
	if ctrl.Counters().Get(CounterHeartbeatMisses) < fleet {
		t.Error("lease churn never exercised heartbeat misses")
	}
	assertCountersConserve(t, ctrl)
}

// TestExpireLeasesChurnRace is the shard-dangerous interleaving the
// striping change makes possible: ExpireLeases sweeping all shards
// while registers, reports and hot reloads land concurrently, on the
// injected clock, under -race. Semantics (not just absence of data
// races) are asserted at the end: the ledger conserves and a fresh
// register+report round-trip still serves.
func TestExpireLeasesChurnRace(t *testing.T) {
	const fleet = 24
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	clk := newFakeClock(time.Unix(1700000000, 0))
	ctrl, err := NewController(Config{
		Spec:        spec,
		PolicyPath:  writePolicy(t, dir, spec, 31),
		LeaseWindow: 3 * time.Second,
		Now:         clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	reloadPath := writePolicy(t, t.TempDir(), spec, 32)

	nodes := make([]*simNode, fleet)
	for rank := range nodes {
		nodes[rank] = newSimNode(t, spec, rank)
	}
	var wg sync.WaitGroup
	// Reporters: one per node, re-registering whenever churn evicts
	// them (exactly what a live agent does).
	for rank := 0; rank < fleet; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			n := nodes[rank]
			if err := n.register(ctrl); err != nil {
				t.Errorf("%s register: %v", n.id, err)
				return
			}
			for i := 0; i < 40; i++ {
				if _, err := n.step(ctrl); err != nil {
					if !IsUnregisteredNode(err) && !IsStaleNodeEpoch(err) {
						t.Errorf("%s: %v", n.id, err)
						return
					}
					var reply RegisterNodeReply
					if err := ctrl.register(&RegisterNodeArgs{NodeID: n.id}, &reply); err != nil {
						t.Errorf("%s re-register: %v", n.id, err)
						return
					}
					n.epoch = reply.Epoch
				}
			}
		}(rank)
	}
	// Expirer: advance the clock past the lease window and sweep,
	// racing every reporter's lease stamp.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			clk.Advance(2 * time.Second)
			ctrl.ExpireLeases(clk.Now())
		}
	}()
	// Reloader: swap policy snapshots under the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if err := ctrl.ReloadPolicy(reloadPath); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	assertCountersConserve(t, ctrl)
	n := newSimNode(t, spec, fleet)
	if err := n.register(ctrl); err != nil {
		t.Fatal(err)
	}
	if reply, err := n.step(ctrl); err != nil {
		t.Fatalf("post-churn report: %v", err)
	} else if reply.Source != SourcePolicy {
		t.Fatalf("post-churn source %q, want policy", reply.Source)
	}
	if v := ctrl.PolicyVersion(); v != 16 {
		t.Errorf("policy version %d after 15 reloads, want 16", v)
	}
}
