package serve

// End-to-end chaos drill for the serving plane: a controller and a
// node agent talk through an apex.FaultProxy while the harness
// partitions the network, kills and restarts the controller, and
// feeds it a corrupt hot-reload checkpoint. The invariant throughout:
// the node always runs a guardrail-approved configuration (degrading
// down the ladder, never past it) and reconverges to fresh policy
// within one control interval of each heal.

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"greennfv/internal/atomicio"
	"greennfv/internal/rl/apex"
	"greennfv/internal/sla"
)

// freePort reserves an ephemeral listen address and releases it so
// the controller can be restarted on the same address later.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestServeChaosE2E(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	policyPath := writePolicy(t, dir, spec, 11)
	statePath := filepath.Join(dir, "controller.state")
	ctrlAddr := freePort(t)
	cfg := Config{Spec: spec, PolicyPath: policyPath, StatePath: statePath}

	ctrl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Start(ctrlAddr); err != nil {
		t.Fatal(err)
	}

	proxy, err := apex.NewFaultProxy(ctrlAddr, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	agent, err := NewNodeAgent(NodeConfig{
		NodeID:         "node-a",
		ControllerAddr: proxy.Addr(),
		Spec:           spec,
		CallTimeout:    250 * time.Millisecond,
		StaleAfter:     2500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// step drives one interval at a synthetic clock tick and asserts
	// the safety invariant that no chaos below may break: whatever the
	// ladder did, the applied knobs are inside the bounds.
	base := time.Now()
	tick := 0
	step := func() error {
		tick++
		err := agent.Step(base.Add(time.Duration(tick) * time.Second))
		if ks := agent.Env().Knobs(); !inBounds(ks, agent.Env().Bounds()) {
			t.Fatalf("tick %d: applied knobs out of bounds: %+v", tick, ks)
		}
		return err
	}
	mustMode := func(want, when string) {
		t.Helper()
		if agent.Mode() != want {
			t.Fatalf("%s: mode %q, want %q", when, agent.Mode(), want)
		}
	}

	// Healthy: fresh policy flows end to end through the proxy.
	for i := 0; i < 3; i++ {
		if err := step(); err != nil {
			t.Fatalf("healthy tick %d: %v", tick, err)
		}
	}
	mustMode(SourcePolicy, "healthy serving")

	// Partition the agent. The severed connection fails the next
	// report; the agent walks its ladder: last-known-good while fresh,
	// heuristic fallback once the controller has been silent past
	// StaleAfter (synthetic seconds 1 and 2, then 3+).
	proxy.Partition(true)
	if err := step(); err == nil {
		t.Fatal("partitioned tick reported no error")
	}
	mustMode(SourceLastGood, "first partitioned tick")
	step()
	mustMode(SourceLastGood, "second partitioned tick")
	step()
	mustMode(SourceFallback, "stale partitioned tick")

	// Heal the partition: the agent re-registers transparently and is
	// back on fresh policy within one interval.
	proxy.Partition(false)
	if err := step(); err != nil {
		t.Fatalf("post-heal tick: %v", err)
	}
	mustMode(SourcePolicy, "healed partition")

	// Corrupt hot reload mid-serve: rejected loudly, serving untouched.
	blob, err := os.ReadFile(policyPath)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	for i := len(bad) / 3; i < len(bad)/3+128 && i < len(bad); i++ {
		bad[i] ^= 0xA5
	}
	badPath := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ReloadPolicy(badPath); err == nil {
		t.Fatal("corrupt hot reload accepted")
	}
	if err := step(); err != nil {
		t.Fatalf("tick after rejected reload: %v", err)
	}
	mustMode(SourcePolicy, "serving after rejected reload")

	// A valid reload still lands (proves the reload path itself is
	// live, not wedged by the rejected one).
	if err := ctrl.ReloadPolicy(writePolicy(t, t.TempDir(), spec, 12)); err != nil {
		t.Fatalf("valid reload after corrupt one: %v", err)
	}

	// Kill the controller mid-serve. The agent degrades through its
	// local rungs and keeps every interval safe.
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := step(); err == nil {
		t.Fatal("tick with dead controller reported no error")
	}
	mustMode(SourceLastGood, "controller down")

	// Restart the controller on the same address from its persisted
	// state: the hot-reloaded policy version and the fleet's
	// last-known-good configs survive the crash.
	ctrl2, err := NewController(cfg)
	if err != nil {
		t.Fatalf("controller restart: %v", err)
	}
	defer ctrl2.Close()
	if v := ctrl2.PolicyVersion(); v != 2 {
		t.Errorf("restarted policy version %d, want 2 (reload persisted)", v)
	}
	if ctrl2.LastGood("node-a") == nil {
		t.Error("restart lost node-a's last-known-good config")
	}
	if err := ctrl2.Start(ctrlAddr); err != nil {
		t.Fatalf("controller restart listen: %v", err)
	}

	// Reconvergence: within one interval the agent re-registers with
	// the reborn controller and serves fresh policy again.
	if err := step(); err != nil {
		t.Fatalf("post-restart tick: %v", err)
	}
	mustMode(SourcePolicy, "reconverged after restart")

	// Crash-safe persistence leaves no temp droppings behind.
	if stray, err := atomicio.StrayTemps(statePath); err != nil || len(stray) != 0 {
		t.Errorf("stray state temps %v (err %v)", stray, err)
	}
	if agent.Counters().Get(CounterFallbackActivations) == 0 {
		t.Error("chaos run never exercised the ladder")
	}
}
