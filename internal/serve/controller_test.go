package serve

// Controller-level unit tests for the sharded fast path's edges: the
// persistence-failure ledger, the per-source counter conservation law
// (the fallback double-count fix), and the Prometheus exposition
// contract.

import (
	"errors"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"greennfv/internal/perfmodel"
	"greennfv/internal/sla"
	"greennfv/internal/stats"
)

// flakyStore wraps a real store and fails Save while tripped.
type flakyStore struct {
	inner stateStore
	fail  bool
	saves int
}

func (f *flakyStore) Save(st *ControllerState) error {
	if f.fail {
		return errors.New("injected: disk full")
	}
	f.saves++
	return f.inner.Save(st)
}

func (f *flakyStore) Load() (*ControllerState, error) { return f.inner.Load() }

// TestPersistFailureKeepsServing pins the recordLastGood persistence-
// failure path: a failing store bumps the state_persist_errors ledger
// entry, serving continues untouched, and the next last-good change
// retries (and lands) once the store heals.
func TestPersistFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	statePath := filepath.Join(dir, "controller.state")
	ctrl, err := NewController(Config{
		Spec:       spec,
		PolicyPath: writePolicy(t, dir, spec, 41),
		StatePath:  statePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyStore{inner: ctrl.store, fail: true}
	ctrl.store = flaky

	n := newSimNode(t, spec, 0)
	if err := n.register(ctrl); err != nil {
		t.Fatal(err)
	}
	reply, err := n.step(ctrl)
	if err != nil {
		t.Fatalf("report with failing store: %v", err)
	}
	if reply.Source != SourcePolicy {
		t.Fatalf("source %q, want policy (serving must continue)", reply.Source)
	}
	if got := ctrl.Counters().Get(CounterStatePersistErrors); got != 1 {
		t.Fatalf("state_persist_errors = %d, want 1", got)
	}
	if ctrl.LastGood(n.id) == nil {
		t.Fatal("failed persist dropped the in-memory last-known-good")
	}

	// Heal the store; the next last-good CHANGE retries the write.
	flaky.fail = false
	changed := append([]perfmodel.NFKnobs(nil), ctrl.LastGood(n.id)...)
	changed[0].Batch++
	ctrl.recordLastGood(n.id, changed)
	if flaky.saves == 0 {
		t.Fatal("healed store never saw the retry")
	}
	st, err := flaky.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || len(st.LastGood[n.id]) == 0 {
		t.Fatal("retried persist did not land on disk")
	}
	if st.LastGood[n.id][0].Batch != changed[0].Batch {
		t.Errorf("persisted batch %d, want %d", st.LastGood[n.id][0].Batch, changed[0].Batch)
	}
	if got := ctrl.Counters().Get(CounterStatePersistErrors); got != 1 {
		t.Errorf("state_persist_errors = %d after heal, want still 1", got)
	}
}

// TestReportCounterConservation drives a noisy policy against a tight
// SLA so every ladder rung fires, then pins the conservation law:
// configs_pushed = policy + last-good sources, and fallbacks = holds.
// Before the double-count fix a last-good recovery bumped
// fallback_activations too, so fallback exceeded holds — exactly what
// this test rejects.
func TestReportCounterConservation(t *testing.T) {
	budget, err := sla.NewMaxThroughput(1950)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spec := testSpec(budget)
	// Jittered load makes the guardrail verdict traffic-dependent, so
	// the same config passes some intervals and violates others —
	// that's what walks the run through every rung. The budget sits
	// inside the jitter band of this policy's proposals (found
	// empirically for this seed).
	spec.LoadJitter = 0.15
	ctrl, err := NewController(Config{
		Spec:       spec,
		PolicyPath: writePolicy(t, dir, spec, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	n := newSimNode(t, spec, 0)
	if err := n.register(ctrl); err != nil {
		t.Fatal(err)
	}
	var nPolicy, nLastGood, nHold int
	for i := 0; i < 120; i++ {
		reply, err := n.step(ctrl)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		switch reply.Source {
		case SourcePolicy:
			nPolicy++
		case SourceLastGood:
			nLastGood++
		case SourceHold:
			nHold++
		default:
			t.Fatalf("step %d: unknown source %q", i, reply.Source)
		}
	}
	if nLastGood == 0 || nHold == 0 {
		t.Fatalf("scenario vacuous: policy=%d lastGood=%d hold=%d (need every rung)",
			nPolicy, nLastGood, nHold)
	}
	c := ctrl.Counters()
	if got := c.Get(CounterSourcePolicy); got != int64(nPolicy) {
		t.Errorf("source_policy = %d, observed %d", got, nPolicy)
	}
	if got := c.Get(CounterSourceLastGood); got != int64(nLastGood) {
		t.Errorf("source_last_good = %d, observed %d", got, nLastGood)
	}
	if got := c.Get(CounterSourceHold); got != int64(nHold) {
		t.Errorf("source_hold = %d, observed %d", got, nHold)
	}
	if got := c.Get(CounterConfigsPushed); got != int64(nPolicy+nLastGood) {
		t.Errorf("configs_pushed = %d, want %d", got, nPolicy+nLastGood)
	}
	// The fix under test: a last-good recovery is NOT a fallback.
	if got := c.Get(CounterFallbackActivations); got != int64(nHold) {
		t.Errorf("fallback_activations = %d, want %d (holds only)", got, nHold)
	}
	assertCountersConserve(t, ctrl)
	// Decision latency is observed once per decision (any source).
	if got := ctrl.reportLatency.Count(); got != 120 {
		t.Errorf("latency observations = %d, want 120", got)
	}
}

// TestControllerMetricsExposition pins the /metrics contract the
// daemons serve: every stats.Counters key appears as a
// greennfv_serve_<key>_total counter, the gauges report live values,
// and the report-latency histogram exposes its buckets.
func TestControllerMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(sla.NewEnergyEfficiency())
	ctrl, err := NewController(Config{
		Spec:       spec,
		PolicyPath: writePolicy(t, dir, spec, 43),
	})
	if err != nil {
		t.Fatal(err)
	}
	n := newSimNode(t, spec, 0)
	if err := n.register(ctrl); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := n.step(ctrl); err != nil {
			t.Fatal(err)
		}
	}

	reg := stats.NewRegistry()
	ctrl.RegisterMetrics(reg)
	srv := httptest.NewServer(reg)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != stats.PromContentType {
		t.Errorf("content type %q, want %q", ct, stats.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	for _, key := range ctrl.Counters().Names() {
		want := "greennfv_serve_" + stats.SanitizeMetricName(key) + "_total"
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing counter %q for key %q", want, key)
		}
	}
	for _, want := range []string{
		"greennfv_serve_registered_nodes 1",
		"greennfv_serve_policy_version 1",
		`greennfv_serve_report_latency_seconds_bucket{le="+Inf"} 3`,
		"greennfv_serve_report_latency_seconds_count 3",
		"greennfv_serve_configs_pushed_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}
