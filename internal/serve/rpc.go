package serve

import (
	"errors"
	"time"

	"greennfv/internal/perfmodel"
	"greennfv/internal/rpcutil"
)

// The wire contract between node agents and the controller, in the
// idiom of the training plane's actor RPC: registration issues a
// per-node lease epoch, every report is authenticated by (node ID,
// epoch), and net/rpc's error flattening is handled by stable
// sentinel prefixes (rpcutil.Matches).

// DefaultCallTimeout bounds one agent RPC round-trip. Reports move a
// few hundred bytes; a second is orders of magnitude above healthy
// latency while still detecting a dead controller within one control
// interval.
const DefaultCallTimeout = 1 * time.Second

// Typed RPC failures. Keep the message strings stable: remote callers
// match them by prefix.
var (
	// ErrUnregisteredNode rejects a report whose node has no live
	// lease on this controller instance. Retryable: re-register (the
	// normal path after a controller restart or a lease expiry) and
	// repeat.
	ErrUnregisteredNode = errors.New("serve: unregistered node")
	// ErrStaleNodeEpoch rejects a report carrying an epoch that a
	// newer Register for the same node ID superseded. Fatal for that
	// agent instance: a replacement already registered, so the caller
	// must stop applying configs rather than fight it.
	ErrStaleNodeEpoch = errors.New("serve: stale node epoch")
)

// IsUnregisteredNode reports whether err is an ErrUnregisteredNode
// rejection, locally or over RPC.
func IsUnregisteredNode(err error) bool { return rpcutil.Matches(err, ErrUnregisteredNode) }

// IsStaleNodeEpoch reports whether err is an ErrStaleNodeEpoch
// rejection, locally or over RPC.
func IsStaleNodeEpoch(err error) bool { return rpcutil.Matches(err, ErrStaleNodeEpoch) }

// Config sources, reported so agents and tests can observe which rung
// of the degradation ladder produced a configuration.
const (
	// SourcePolicy marks a fresh policy decision.
	SourcePolicy = "policy"
	// SourceLastGood marks a replayed last-known-good configuration.
	SourceLastGood = "last-good"
	// SourceFallback marks a heuristic-fallback configuration.
	SourceFallback = "fallback"
	// SourceHold marks an interval where no new configuration was
	// approved and the node kept its current one.
	SourceHold = "hold"
)

// RegisterNodeArgs announces a node agent to the controller.
type RegisterNodeArgs struct {
	NodeID string
}

// RegisterNodeReply returns the lease epoch the node must echo in
// every report, plus the serving policy version for observability.
type RegisterNodeReply struct {
	Epoch         uint64
	PolicyVersion int
}

// ReportArgs is one control-interval observation from a node.
type ReportArgs struct {
	// NodeID and Epoch identify the leased caller; reports without a
	// live lease fail with ErrUnregisteredNode (re-register and
	// retry), reports with a superseded epoch with ErrStaleNodeEpoch
	// (fatal).
	NodeID string
	Epoch  uint64
	// Obs is the node's state vector (env.ObserveInto layout; length
	// must match the controller's policy).
	Obs []float64
	// Traffic is the node's current offered traffic — what the
	// guardrail predicts proposals against.
	Traffic perfmodel.Traffic
}

// ReportReply carries the controller's decision for the interval.
type ReportReply struct {
	// Hold, when true, means no proposal survived the controller's
	// guardrail this interval: the node keeps its current
	// configuration (and walks its own ladder). Config is nil.
	Hold bool
	// Config is the vetted knob configuration to apply.
	Config []perfmodel.NFKnobs
	// Source is the ladder rung that produced Config (SourcePolicy or
	// SourceLastGood; the heuristic rung runs agent-side).
	Source string
	// PolicyVersion is the serving policy version, bumped by every
	// hot reload.
	PolicyVersion int
}

// ControllerService is the net/rpc wrapper around a Controller.
type ControllerService struct {
	c *Controller
}

// Register is the RPC method agents call at startup — and again after
// a controller restart or lease expiry. Each call issues a fresh
// epoch, fencing off any zombie agent instance still holding the
// previous one.
func (s *ControllerService) Register(args *RegisterNodeArgs, reply *RegisterNodeReply) error {
	return s.c.register(args, reply)
}

// Report is the RPC method agents call once per control interval.
func (s *ControllerService) Report(args *ReportArgs, reply *ReportReply) error {
	return s.c.report(args, reply)
}
