package control

import (
	"errors"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
)

// EnvFactory builds a fresh environment for a controller: seed varies
// per training actor, opts select the controller's platform variant.
type EnvFactory func(seed int64, opts perfmodel.EvalOptions) (*env.Env, error)

// Controller is one resource-management policy under comparison.
type Controller interface {
	// Name identifies the controller in reports.
	Name() string
	// Options reports the platform variant the controller runs on
	// (busy-poll vs poll/callback mix, C-state policy).
	Options() perfmodel.EvalOptions
	// Prepare trains or initializes the controller. Controllers
	// without a training phase return nil immediately.
	Prepare(factory EnvFactory) error
	// Step runs one control interval on the environment: observe,
	// decide, apply knobs, and return the resulting measurement.
	Step(e *env.Env) (perfmodel.Result, error)
}

// Proposer is implemented by controllers that can compute their next
// knob allocation without applying it to an env. The serving plane's
// degradation ladder uses it to get a safe fallback configuration for
// a real node from a shadow environment.
type Proposer interface {
	Propose(e *env.Env) []perfmodel.NFKnobs
}

// Run drives a prepared controller for `steps` intervals on a fresh
// environment and returns the mean of the last `settle` measurements
// (throughput Gbps, energy J) plus the final measurement.
func Run(c Controller, factory EnvFactory, seed int64, steps, settle int) (avgTput, avgEnergy float64, last perfmodel.Result, err error) {
	if steps <= 0 {
		return 0, 0, perfmodel.Result{}, errors.New("control: steps must be positive")
	}
	if settle <= 0 || settle > steps {
		settle = steps
	}
	e, err := factory(seed, c.Options())
	if err != nil {
		return 0, 0, perfmodel.Result{}, err
	}
	var tputs, energies []float64
	for i := 0; i < steps; i++ {
		res, err := c.Step(e)
		if err != nil {
			return 0, 0, perfmodel.Result{}, err
		}
		last = res
		tputs = append(tputs, res.ThroughputGbps)
		energies = append(energies, res.EnergyJoules)
	}
	for i := steps - settle; i < steps; i++ {
		avgTput += tputs[i]
		avgEnergy += energies[i]
	}
	avgTput /= float64(settle)
	avgEnergy /= float64(settle)
	return avgTput, avgEnergy, last, nil
}

// Baseline is the untuned platform: performance governor (max
// frequency), stock defaults for every other knob, DPDK busy-poll
// with C-states disabled. It never adapts.
type Baseline struct {
	knobs []perfmodel.NFKnobs // cached defaults (SetKnobs copies them)
}

// NewBaseline returns the Baseline controller.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements Controller.
func (b *Baseline) Name() string { return "Baseline" }

// Options implements Controller: full busy-poll, no sleeping.
func (b *Baseline) Options() perfmodel.EvalOptions {
	return perfmodel.EvalOptions{BusyPoll: true, NoSleep: true}
}

// Prepare implements Controller (no training).
func (b *Baseline) Prepare(EnvFactory) error { return nil }

// Step implements Controller: reapply platform defaults.
func (b *Baseline) Step(e *env.Env) (perfmodel.Result, error) {
	if len(b.knobs) != e.NumNFs() {
		b.knobs = perfmodel.DefaultKnobs(e.NumNFs())
	}
	return e.SetKnobs(b.knobs)
}
