package control

import (
	"errors"
	"fmt"
	"io"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/apex"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

// GreenNFV is the paper's controller: a DDPG policy trained with the
// Ape-X distributed prioritized-replay architecture, deployed
// greedily at control time, on the poll/callback platform with NF
// sleeping.
type GreenNFV struct {
	slaSpec sla.SLA
	// TrainSteps is the training budget ("episodes").
	TrainSteps int
	// Actors is the Ape-X worker count.
	Actors int
	// Seed fixes training randomness.
	Seed int64
	// Parallel trains with concurrent actor goroutines and the
	// prefetching learner pipeline instead of the deterministic
	// round-robin interleaving (see apex.TrainerConfig).
	Parallel bool
	// ReplayShards overrides the parallel mode's replay lock-stripe
	// count (0 = auto).
	ReplayShards int
	// Float32 runs learner updates through the single-precision NN
	// fast path in the Parallel/RemoteActors modes (ignored by the
	// deterministic round-robin mode). See apex.TrainerConfig.Float32.
	Float32 bool
	// SamplesPerInsert caps replay samples consumed per transition
	// inserted in the asynchronous modes (0 = unpaced). See
	// apex.TrainerConfig.SamplesPerInsert.
	SamplesPerInsert float64
	// RemoteActors > 0 trains with actor processes over net/rpc (the
	// paper's six-node topology) instead of in-process actors;
	// RemoteSpec must describe the actors' environment. See
	// apex.TrainerConfig.
	RemoteActors int
	// SpawnRemote is the argv prefix that launches each actor process
	// (empty = actors connect externally to ListenAddr).
	SpawnRemote []string
	// ListenAddr is the learner's RPC bind address in remote mode.
	ListenAddr string
	// RemoteSpec tells remote actors how to rebuild the environment.
	RemoteSpec *apex.ActorSpec
	// CheckpointPath, when set, makes the trainer write its full
	// training state there atomically — every CheckpointEvery learner
	// updates in remote mode, and again when training completes. See
	// apex.Trainer.Checkpoint.
	CheckpointPath string
	// CheckpointEvery is the update interval between checkpoints
	// (<= 0: only the completion checkpoint is written).
	CheckpointEvery int
	// CheckpointReplay includes replay-buffer contents in checkpoints,
	// making a resumed run's updates bit-exact at the cost of much
	// larger files.
	CheckpointReplay bool
	// ResumePath, when set, restores training state from that
	// checkpoint before stepping, so a killed training run continues
	// mid-budget instead of starting over. The configuration must
	// match the run that wrote the checkpoint.
	ResumePath string

	trainer *apex.Trainer
	// agent is the deployed policy network: the learner's agent
	// after Prepare, or a loaded agent after LoadActor.
	agent *ddpg.Agent
	state []float64
}

// NewGreenNFV builds the controller for one SLA.
func NewGreenNFV(s sla.SLA, trainSteps, actors int, seed int64) *GreenNFV {
	return &GreenNFV{slaSpec: s, TrainSteps: trainSteps, Actors: actors, Seed: seed}
}

// Name implements Controller.
func (g *GreenNFV) Name() string {
	switch g.slaSpec.Kind {
	case sla.MaxThroughput:
		return "GreenNFV(MaxT)"
	case sla.MinEnergy:
		return "GreenNFV(MinE)"
	default:
		return "GreenNFV(EE)"
	}
}

// Options implements Controller: the GreenNFV platform (zero value:
// poll/callback mix, deep C-states).
func (g *GreenNFV) Options() perfmodel.EvalOptions { return perfmodel.EvalOptions{} }

// Prepare implements Controller: run Ape-X training.
func (g *GreenNFV) Prepare(factory EnvFactory) error {
	if factory == nil {
		return errors.New("control: GreenNFV needs an environment factory")
	}
	cfg := apex.DefaultTrainerConfig(g.TrainSteps)
	if g.Actors > 0 {
		cfg.Actors = g.Actors
	}
	cfg.Parallel = g.Parallel
	cfg.ReplayShards = g.ReplayShards
	cfg.Float32 = g.Float32
	cfg.SamplesPerInsert = g.SamplesPerInsert
	cfg.RemoteActors = g.RemoteActors
	cfg.SpawnRemote = g.SpawnRemote
	cfg.ListenAddr = g.ListenAddr
	cfg.RemoteSpec = g.RemoteSpec
	cfg.CheckpointPath = g.CheckpointPath
	cfg.CheckpointEvery = g.CheckpointEvery
	cfg.CheckpointReplay = g.CheckpointReplay
	cfg.EnvFactory = func(actorID int) (*env.Env, error) {
		return factory(g.Seed+int64(actorID)*131, g.Options())
	}
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Seed = g.Seed
	trainer, err := apex.NewTrainer(cfg)
	if err != nil {
		return err
	}
	if g.ResumePath != "" {
		if err := trainer.Resume(g.ResumePath); err != nil {
			return err
		}
	}
	if err := trainer.Run(); err != nil {
		return fmt.Errorf("control: GreenNFV training: %w", err)
	}
	// The remote mode checkpoints on completion itself; the in-process
	// modes leave it to us.
	if g.CheckpointPath != "" && g.RemoteActors == 0 {
		if err := trainer.Checkpoint(g.CheckpointPath); err != nil {
			return fmt.Errorf("control: GreenNFV checkpoint: %w", err)
		}
	}
	g.trainer = trainer
	g.agent = trainer.Learner().Agent()
	return nil
}

// SaveActor serializes the deployed policy network. The checkpoint
// is what the paper amortizes: "the model needs to be trained only
// once before deployment and is run many times".
func (g *GreenNFV) SaveActor(w io.Writer) error {
	if g.agent == nil {
		return errors.New("control: GreenNFV has no trained policy")
	}
	data, err := g.agent.ActorBytes()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// SavePolicyState writes the deployed policy's full agent state — the
// ddpg checkpoint format the serving plane (internal/serve,
// cmd/greennfvd) loads and validates, replay buffer excluded.
func (g *GreenNFV) SavePolicyState(w io.Writer) error {
	if g.agent == nil {
		return errors.New("control: GreenNFV has no trained policy")
	}
	return g.agent.SaveState(w, false)
}

// NewGreenNFVFromAgent builds a deploy-only controller around an
// already-loaded agent (no trainer, no further learning).
func NewGreenNFVFromAgent(s sla.SLA, agent *ddpg.Agent) *GreenNFV {
	return &GreenNFV{slaSpec: s, agent: agent}
}

// NewGreenNFVFromActor builds a deploy-only controller from a saved
// actor checkpoint (no trainer, no further learning).
func NewGreenNFVFromActor(s sla.SLA, stateDim, actionDim int, r io.Reader) (*GreenNFV, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	cfg := ddpg.DefaultConfig(stateDim, actionDim)
	agent, err := ddpg.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := agent.LoadActorBytes(data); err != nil {
		return nil, fmt.Errorf("control: load actor: %w", err)
	}
	return &GreenNFV{slaSpec: s, agent: agent}, nil
}

// Trainer exposes the underlying trainer (for training-curve
// figures).
func (g *GreenNFV) Trainer() *apex.Trainer { return g.trainer }

// Step implements Controller: greedy policy action.
func (g *GreenNFV) Step(e *env.Env) (perfmodel.Result, error) {
	if g.agent == nil {
		return perfmodel.Result{}, errors.New("control: GreenNFV not prepared")
	}
	if g.state == nil || len(g.state) != e.StateDim() {
		g.state = e.Reset(g.Seed + 7777)
	}
	action := g.agent.Greedy(g.state)
	next, _, info, err := e.Step(action)
	if err != nil {
		return perfmodel.Result{}, err
	}
	g.state = next
	return info, nil
}
