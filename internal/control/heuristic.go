package control

import (
	"math"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
)

// Heuristic is the paper's baseline heuristic (Algorithm 1): start
// from fixed allocations (one core per NF, median frequency, batch 2,
// LLC proportional to flow rate, DMA sized from LLC/batch), then
// periodically nudge core frequency and batch size against two
// energy-efficiency thresholds. The paper notes this "does not use
// any prior knowledge", converges slowly, and still roughly doubles
// the baseline — which is the behaviour reproduced here.
type Heuristic struct {
	// Threshold1 gates the frequency step (λ below it steps the
	// frequency down, per Algorithm 1 lines 9–12).
	Threshold1 float64
	// Threshold2 gates the batch step (lines 13–16).
	Threshold2 float64

	initialized bool
	knobs       []perfmodel.NFKnobs
}

// NewHeuristic returns the controller with the thresholds used in the
// comparison experiments (λ is Gbps per kJ).
func NewHeuristic() *Heuristic {
	return &Heuristic{Threshold1: 1.2, Threshold2: 2.0}
}

// Name implements Controller.
func (h *Heuristic) Name() string { return "Heuristics" }

// Options implements Controller: the heuristic manages knobs but not
// NF sleeping, so it runs on the stock busy-poll platform.
func (h *Heuristic) Options() perfmodel.EvalOptions {
	return perfmodel.EvalOptions{BusyPoll: true, NoSleep: true}
}

// Prepare implements Controller (no training phase).
func (h *Heuristic) Prepare(EnvFactory) error { return nil }

// Step implements Controller: Algorithm 1 — propose, then apply.
func (h *Heuristic) Step(e *env.Env) (perfmodel.Result, error) {
	return e.SetKnobs(h.Propose(e))
}

// Propose implements Proposer: it computes the next allocation from
// the env's last observation without applying it. The returned slice
// is owned by the controller and valid until the next Propose.
func (h *Heuristic) Propose(e *env.Env) []perfmodel.NFKnobs {
	bounds := e.Bounds()
	if !h.initialized {
		// Lines 1–6: fixed initial allocation.
		n := e.NumNFs()
		h.knobs = make([]perfmodel.NFKnobs, n)
		tr := e.LastTraffic()
		median := (bounds.FreqMin + bounds.FreqMax) / 2
		for i := range h.knobs {
			batch := 2
			llc := 1.0 / float64(n) // proportional to (equal) flow rates
			dma := int64(llc*float64(18<<20)) / int64(tr.FrameBytes) * int64(batch)
			h.knobs[i] = bounds.Clamp(perfmodel.NFKnobs{
				CPUShare:    1,
				FreqGHz:     median,
				LLCFraction: llc,
				DMABytes:    dma,
				Batch:       batch,
			})
		}
		h.initialized = true
		return h.knobs
	}

	// Line 7–8: periodically check throughput and energy, compute λ.
	last := e.Last()
	lambda := last.Efficiency // Gbps per kJ

	for i := range h.knobs {
		// Lines 9–12: frequency step toward the nearest available
		// ladder value.
		if lambda < h.Threshold1 {
			h.knobs[i].FreqGHz = stepFreq(h.knobs[i].FreqGHz, -1, bounds)
		} else {
			h.knobs[i].FreqGHz = stepFreq(h.knobs[i].FreqGHz, +1, bounds)
		}
		// Lines 13–16: unit batch step.
		if lambda < h.Threshold2 {
			h.knobs[i].Batch++
		} else {
			h.knobs[i].Batch--
		}
		h.knobs[i] = bounds.Clamp(h.knobs[i])
	}
	return h.knobs
}

// stepFreq moves one 100 MHz ladder step within bounds.
func stepFreq(f float64, dir int, b perfmodel.KnobBounds) float64 {
	f = math.Round(f*10)/10 + 0.1*float64(dir)
	if f < b.FreqMin {
		return b.FreqMin
	}
	if f > b.FreqMax {
		return b.FreqMax
	}
	return f
}
