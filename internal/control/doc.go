// Package control implements the five resource controllers the
// paper's evaluation compares (Figure 9): the untuned Baseline, the
// heuristic of Algorithm 1, the EE-Pstate scheme of Iqbal & John with
// a DES traffic predictor, the tabular Q-learning model, and
// GreenNFV itself (DDPG + Ape-X). All controllers drive the same
// environment through one interface so the comparison is apples to
// apples.
//
// # Paper mapping
//
//   - Baseline: the untuned busy-poll platform of every comparison.
//   - Heuristic: Algorithm 1 (§4.2).
//   - EEPstate: the Iqbal & John P/C-state scheme from related work.
//   - QControl: the tabular Q-learning comparison model (§4.3).
//   - GreenNFV: the paper's controller (§4.3.2), trained with Ape-X
//     DDPG and deployed greedily; Figures 6–11.
//   - ClusterGreenNFV: the multi-node extension — same DDPG + Ape-X
//     stack trained on env.ClusterEnv, with knob blocks for every
//     chain and (when the factory leaves placement unpinned) the
//     per-chain placement logit head. FigCluster compares it against
//     the analytic placement.FFDSwap and placement.Relaxation
//     policies at fixed knob training.
//
// # Concurrency and determinism
//
// Controllers are NOT goroutine-safe; the sweep and figure drivers
// give each concurrently running cell its own controller and
// environment. With the default (round-robin) trainer every
// controller is deterministic given its seed — the property the
// byte-diffed figure tables rest on. GreenNFV.Parallel and
// GreenNFV.RemoteActors select the concurrent and multi-process
// Ape-X training modes, which are faster but not deterministic, so
// the figure harness never enables them.
package control
