package control

import (
	"errors"
	"fmt"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/apex"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

// ClusterFactory builds one ClusterEnv per seed — the cluster
// counterpart of EnvFactory. The factory owns topology, workload, and
// placement policy; the controller only varies the seed per actor.
type ClusterFactory func(seed int64) (*env.ClusterEnv, error)

// ClusterGreenNFV trains and deploys the DDPG policy on a multi-node
// ClusterEnv: knobs for every NF of every chain plus, when the
// factory's environments leave placement to the agent, the per-chain
// placement logit head. Training always runs the deterministic
// round-robin Ape-X path (the figure drivers byte-diff their outputs,
// and Parallel/remote modes require single-node environments).
type ClusterGreenNFV struct {
	slaSpec sla.SLA
	// TrainSteps is the training budget, Actors the Ape-X worker
	// count, Seed the base seed (actor i trains on Seed + i*131).
	TrainSteps int
	Actors     int
	Seed       int64

	trainer *apex.Trainer
	agent   *ddpg.Agent
	state   []float64
}

// NewClusterGreenNFV builds the controller for one SLA.
func NewClusterGreenNFV(s sla.SLA, trainSteps, actors int, seed int64) *ClusterGreenNFV {
	return &ClusterGreenNFV{slaSpec: s, TrainSteps: trainSteps, Actors: actors, Seed: seed}
}

// Name identifies the controller in tables.
func (g *ClusterGreenNFV) Name() string { return "GreenNFV-Cluster" }

// Options reports the platform variant (the GreenNFV platform: poll/
// callback mix, deep C-states), matching GreenNFV.
func (g *ClusterGreenNFV) Options() perfmodel.EvalOptions { return perfmodel.EvalOptions{} }

// Prepare runs Ape-X training over cluster environments built by the
// factory.
func (g *ClusterGreenNFV) Prepare(factory ClusterFactory) error {
	if factory == nil {
		return errors.New("control: ClusterGreenNFV needs a cluster factory")
	}
	cfg := apex.DefaultTrainerConfig(g.TrainSteps)
	if g.Actors > 0 {
		cfg.Actors = g.Actors
	}
	cfg.StepperFactory = func(actorID int) (env.Stepper, error) {
		return factory(g.Seed + int64(actorID)*131)
	}
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0)
	cfg.AgentConfig.Seed = g.Seed
	trainer, err := apex.NewTrainer(cfg)
	if err != nil {
		return err
	}
	if err := trainer.Run(); err != nil {
		return fmt.Errorf("control: ClusterGreenNFV training: %w", err)
	}
	g.trainer = trainer
	g.agent = trainer.Learner().Agent()
	return nil
}

// Trainer exposes the underlying trainer (for training-curve
// figures).
func (g *ClusterGreenNFV) Trainer() *apex.Trainer { return g.trainer }

// Step runs one greedy policy action on the measurement environment
// and returns the cluster roll-up (see env.ClusterEnv.Summary).
func (g *ClusterGreenNFV) Step(e *env.ClusterEnv) (perfmodel.Result, error) {
	if g.agent == nil {
		return perfmodel.Result{}, errors.New("control: ClusterGreenNFV not prepared")
	}
	if g.state == nil || len(g.state) != e.StateDim() {
		g.state = e.Reset(g.Seed + 7777)
	}
	action := g.agent.Greedy(g.state)
	next, _, info, err := e.Step(action)
	if err != nil {
		return perfmodel.Result{}, err
	}
	g.state = next
	return info, nil
}
