package control

import (
	"testing"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/sla"
)

func factory(t *testing.T) EnvFactory {
	t.Helper()
	return func(seed int64, opts perfmodel.EvalOptions) (*env.Env, error) {
		return env.New(env.Config{
			Model:      perfmodel.Default(),
			Chain:      perfmodel.StandardChain(),
			Bounds:     perfmodel.DefaultBounds(),
			SLA:        sla.NewEnergyEfficiency(),
			Flows:      env.StandardWorkload(),
			LoadJitter: 0.03,
			Options:    opts,
			Seed:       seed,
		})
	}
}

func TestBaselineStatic(t *testing.T) {
	c := NewBaseline()
	if err := c.Prepare(nil); err != nil {
		t.Fatal(err)
	}
	tput, energy, last, err := Run(c, factory(t), 1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tput < 1.2 || tput > 3.2 {
		t.Errorf("baseline throughput = %v, want ~2", tput)
	}
	if energy < 2200 || energy > 3400 {
		t.Errorf("baseline energy = %v, want ~2700", energy)
	}
	if last.ThroughputGbps <= 0 {
		t.Error("no final measurement")
	}
	if !c.Options().BusyPoll || !c.Options().NoSleep {
		t.Error("baseline must busy-poll without sleeping")
	}
}

func TestHeuristicImprovesOverBaseline(t *testing.T) {
	b := NewBaseline()
	bt, be, _, err := Run(b, factory(t), 1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeuristic()
	// The heuristic converges slowly (unit batch steps): give it the
	// paper's long horizon.
	ht, he, _, err := Run(h, factory(t), 1, 400, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ht < 1.5*bt {
		t.Errorf("heuristic %.2f Gbps not ~2x baseline %.2f", ht, bt)
	}
	if ht > 3.5*bt {
		t.Errorf("heuristic %.2f Gbps too strong vs baseline %.2f", ht, bt)
	}
	_ = he
	_ = be
}

func TestEEPstateTracksLoad(t *testing.T) {
	p := NewEEPstate()
	if err := p.Prepare(nil); err != nil {
		t.Fatal(err)
	}
	tput, energy, _, err := Run(p, factory(t), 2, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 || energy <= 0 {
		t.Fatalf("EE-Pstate result %v Gbps %v J", tput, energy)
	}
	// C-state management must beat the baseline's energy at the same
	// or better throughput.
	b := NewBaseline()
	bt, be, _, err := Run(b, factory(t), 2, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if energy >= be {
		t.Errorf("EE-Pstate energy %v not below baseline %v", energy, be)
	}
	if tput < bt {
		t.Errorf("EE-Pstate throughput %v below baseline %v", tput, bt)
	}
}

func TestQLearningPreparesAndControls(t *testing.T) {
	q := NewQLearning(sla.NewEnergyEfficiency(), 3000)
	if _, err := q.Step(nil); err == nil {
		t.Error("unprepared step accepted")
	}
	if err := q.Prepare(factory(t)); err != nil {
		t.Fatal(err)
	}
	tput, _, _, err := Run(q, factory(t), 3, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBaseline()
	bt, _, _, err := Run(b, factory(t), 3, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tput < bt {
		t.Errorf("Q-learning %.2f below baseline %.2f", tput, bt)
	}
}

func TestGreenNFVPreparesAndControls(t *testing.T) {
	g := NewGreenNFV(sla.NewEnergyEfficiency(), 600, 2, 11)
	if _, err := g.Step(nil); err == nil {
		t.Error("unprepared step accepted")
	}
	if err := g.Prepare(factory(t)); err != nil {
		t.Fatal(err)
	}
	if g.Trainer() == nil || len(g.Trainer().Snapshots) == 0 {
		t.Error("training left no snapshots")
	}
	tput, energy, _, err := Run(g, factory(t), 4, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 || energy <= 0 {
		t.Fatalf("GreenNFV result %v/%v", tput, energy)
	}
	if g.Options().BusyPoll || g.Options().NoSleep {
		t.Error("GreenNFV must run the poll/callback + sleep platform")
	}
}

func TestRunValidation(t *testing.T) {
	if _, _, _, err := Run(NewBaseline(), factory(t), 1, 0, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestControllerNames(t *testing.T) {
	mt, _ := sla.NewMaxThroughput(2000)
	me, _ := sla.NewMinEnergy(7.5)
	names := map[Controller]string{
		NewBaseline():            "Baseline",
		NewHeuristic():           "Heuristics",
		NewEEPstate():            "EE-Pstate",
		NewQLearning(me, 1):      "Q-Learning",
		NewGreenNFV(mt, 1, 1, 1): "GreenNFV(MaxT)",
		NewGreenNFV(me, 1, 1, 1): "GreenNFV(MinE)",
		NewGreenNFV(sla.NewEnergyEfficiency(), 1, 1, 1): "GreenNFV(EE)",
	}
	for c, want := range names {
		if c.Name() != want {
			t.Errorf("name = %q, want %q", c.Name(), want)
		}
	}
}
