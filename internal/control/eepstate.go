package control

import (
	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/stats"
)

// EEPstate reproduces the Iqbal & John baseline ("Efficient Traffic
// Aware Power Management in Multicore Communications Processors"):
// a Double-Exponential-Smoothing predictor forecasts the next
// interval's packet arrival rate, and threshold rules select the
// processor P-state (frequency) and park idle cores in C-states.
// Every other knob keeps the vendor defaults — the paper's point is
// that frequency-only management leaves the other four knobs on the
// table.
type EEPstate struct {
	// HighWater and LowWater are load fractions (predicted rate /
	// line rate) that select the max / min P-state; between them the
	// frequency interpolates.
	HighWater, LowWater float64
	// Defaults are the non-frequency knobs the scheme never touches.
	Defaults perfmodel.NFKnobs

	des *stats.DES
}

// NewEEPstate returns the controller with the thresholds from the
// original scheme (70% / 30%) and vendor-default knobs (moderate
// batch, stock buffers).
func NewEEPstate() *EEPstate {
	return &EEPstate{
		HighWater: 0.7,
		LowWater:  0.3,
		Defaults: perfmodel.NFKnobs{
			CPUShare:    1,
			LLCFraction: 1.0 / 3,
			DMABytes:    16 << 20,
			Batch:       16,
		},
		des: stats.MustDES(0.4, 0.3),
	}
}

// Name implements Controller.
func (p *EEPstate) Name() string { return "EE-Pstate" }

// Options implements Controller: active cores busy-poll (the scheme
// predates NF sleeping) but idle cores are parked in C-states — the
// scheme's whole point is "P and C-state" management.
func (p *EEPstate) Options() perfmodel.EvalOptions {
	return perfmodel.EvalOptions{BusyPoll: true, NoSleep: false}
}

// Prepare implements Controller (no training phase).
func (p *EEPstate) Prepare(EnvFactory) error { return nil }

// Step implements Controller: observe arrival rate, forecast with
// DES, threshold into a P-state — propose, then apply.
func (p *EEPstate) Step(e *env.Env) (perfmodel.Result, error) {
	return e.SetKnobs(p.Propose(e))
}

// Propose implements Proposer: it forecasts the next interval's load
// and computes the P-state allocation without applying it.
func (p *EEPstate) Propose(e *env.Env) []perfmodel.NFKnobs {
	bounds := e.Bounds()
	tr := e.LastTraffic()
	p.des.Observe(tr.OfferedPPS)
	predicted := p.des.Forecast(1)
	if predicted < 0 {
		predicted = 0
	}
	// Load fraction against 10 GbE line rate at the observed frame
	// size.
	line := lineRatePPS(tr.FrameBytes)
	frac := predicted / line

	var freq float64
	switch {
	case frac >= p.HighWater:
		freq = bounds.FreqMax
	case frac <= p.LowWater:
		freq = bounds.FreqMin
	default:
		span := (frac - p.LowWater) / (p.HighWater - p.LowWater)
		freq = bounds.FreqMin + span*(bounds.FreqMax-bounds.FreqMin)
	}

	ks := make([]perfmodel.NFKnobs, e.NumNFs())
	for i := range ks {
		k := p.Defaults
		k.FreqGHz = freq
		ks[i] = bounds.Clamp(k)
	}
	return ks
}

// lineRatePPS mirrors traffic.LineRatePPS for 10 GbE without
// importing the traffic package into the controller layer.
func lineRatePPS(frameBytes int) float64 {
	if frameBytes < 64 {
		frameBytes = 64
	}
	return 10e9 / (float64(frameBytes+20) * 8)
}
