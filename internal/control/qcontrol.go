package control

import (
	"errors"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/qlearn"
	"greennfv/internal/sla"
)

// QLearning is the paper's tabular Q-learning baseline: knobs are
// discretized to a coarse grid (k levels over 5 knobs), states to
// (throughput, energy) bins, and a Q-table is trained online. The
// paper's §5.1 observation — "fine-tuning the parameters is difficult
// in real-time" with discrete levels — emerges naturally from the
// grid resolution.
type QLearning struct {
	cfg        qlearn.Config
	trainSteps int
	slaSpec    sla.SLA
	agent      *qlearn.Agent
}

// NewQLearning builds the baseline with the given SLA reward and
// training budget.
func NewQLearning(s sla.SLA, trainSteps int) *QLearning {
	return &QLearning{cfg: qlearn.DefaultConfig(), trainSteps: trainSteps, slaSpec: s}
}

// Name implements Controller.
func (q *QLearning) Name() string { return "Q-Learning" }

// Options implements Controller: like the heuristic it manages knobs
// on the stock busy-poll platform.
func (q *QLearning) Options() perfmodel.EvalOptions {
	return perfmodel.EvalOptions{BusyPoll: true, NoSleep: true}
}

// Prepare implements Controller: train the Q-table against a private
// environment.
func (q *QLearning) Prepare(factory EnvFactory) error {
	if factory == nil {
		return errors.New("control: q-learning needs an environment factory")
	}
	agent, err := qlearn.New(q.cfg)
	if err != nil {
		return err
	}
	e, err := factory(q.cfg.Seed, q.Options())
	if err != nil {
		return err
	}
	last := e.Last()
	state := agent.StateIndex(last.ThroughputGbps, last.EnergyJoules)
	for i := 0; i < q.trainSteps; i++ {
		action := agent.Act(state)
		k, err := agent.Knobs(action)
		if err != nil {
			return err
		}
		ks := make([]perfmodel.NFKnobs, e.NumNFs())
		for j := range ks {
			ks[j] = k
		}
		res, err := e.SetKnobs(ks)
		if err != nil {
			return err
		}
		reward := q.slaSpec.Reward(res.ThroughputGbps, res.EnergyJoules)
		next := agent.StateIndex(res.ThroughputGbps, res.EnergyJoules)
		if err := agent.Update(state, action, reward, next); err != nil {
			return err
		}
		state = next
	}
	q.agent = agent
	return nil
}

// Step implements Controller: greedy action from the trained table.
func (q *QLearning) Step(e *env.Env) (perfmodel.Result, error) {
	if q.agent == nil {
		return perfmodel.Result{}, errors.New("control: q-learning not prepared")
	}
	last := e.Last()
	state := q.agent.StateIndex(last.ThroughputGbps, last.EnergyJoules)
	action := q.agent.Greedy(state)
	k, err := q.agent.Knobs(action)
	if err != nil {
		return perfmodel.Result{}, err
	}
	ks := make([]perfmodel.NFKnobs, e.NumNFs())
	for j := range ks {
		ks[j] = k
	}
	return e.SetKnobs(ks)
}
