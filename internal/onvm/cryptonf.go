package onvm

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"sync/atomic"
)

// CryptoNF encrypts (or decrypts — CTR is symmetric) packet payloads
// with AES-CTR, standing in for an IPsec-style tunneling gateway.
// It is the heaviest NF in the library: every payload byte passes
// through the cipher, matching the paper's "heavyweight" NF class.
type CryptoNF struct {
	block     cipher.Block
	processed atomic.Uint64
	// iv derives per-packet from a counter so packets are
	// independently processable.
	counter atomic.Uint64
}

// NewCryptoNF builds the NF with a 16/24/32-byte AES key.
func NewCryptoNF(key []byte) (*CryptoNF, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &CryptoNF{block: block}, nil
}

// Name implements Handler.
func (c *CryptoNF) Name() string { return "crypto" }

// Processed reports the number of payloads transformed.
func (c *CryptoNF) Processed() uint64 { return c.processed.Load() }

// Handle implements Handler: encrypt the L4 payload in place.
func (c *CryptoNF) Handle(m *Mbuf) Verdict {
	payload := l4Payload(m.Data)
	if payload == nil {
		return VerdictForward
	}
	var iv [16]byte
	binary.BigEndian.PutUint64(iv[8:], c.counter.Add(1))
	cipher.NewCTR(c.block, iv[:]).XORKeyStream(payload, payload)
	c.processed.Add(1)
	return VerdictForward
}

// Cost implements Handler: cipher setup per packet plus per-byte
// rounds (AES-NI-class constants).
func (c *CryptoNF) Cost() CostModel {
	return CostModel{
		CyclesPerPacket: 600,
		CyclesPerByte:   4.5,
		StateBytes:      8192,
	}
}

// VXLANTunnel encapsulates frames in a VXLAN header (outer UDP would
// follow in a full stack; the model prepends the 8-byte VXLAN header
// with the configured VNI) or strips it in decap mode — the
// "tunneling gateway" NF class from the paper's introduction.
type VXLANTunnel struct {
	vni    uint32
	decap  bool
	errors atomic.Uint64
}

// vxlanHeaderBytes is the VXLAN header size (RFC 7348).
const vxlanHeaderBytes = 8

// NewVXLANTunnel builds an encapsulating (decap=false) or
// decapsulating (decap=true) tunnel endpoint for a 24-bit VNI.
func NewVXLANTunnel(vni uint32, decap bool) (*VXLANTunnel, error) {
	if vni >= 1<<24 {
		return nil, errors.New("onvm: VXLAN VNI must fit in 24 bits")
	}
	return &VXLANTunnel{vni: vni, decap: decap}, nil
}

// Name implements Handler.
func (v *VXLANTunnel) Name() string {
	if v.decap {
		return "vxlan-decap"
	}
	return "vxlan-encap"
}

// Errors reports packets dropped for malformed encapsulation.
func (v *VXLANTunnel) Errors() uint64 { return v.errors.Load() }

// Handle implements Handler.
func (v *VXLANTunnel) Handle(m *Mbuf) Verdict {
	if v.decap {
		if len(m.Data) < vxlanHeaderBytes || m.Data[0] != 0x08 {
			v.errors.Add(1)
			return VerdictDrop
		}
		gotVNI := binary.BigEndian.Uint32(m.Data[4:8]) >> 8
		if gotVNI != v.vni {
			v.errors.Add(1)
			return VerdictDrop
		}
		if err := m.Adj(vxlanHeaderBytes); err != nil {
			v.errors.Add(1)
			return VerdictDrop
		}
		return VerdictForward
	}
	hdr, err := m.Prepend(vxlanHeaderBytes)
	if err != nil {
		v.errors.Add(1)
		return VerdictDrop
	}
	hdr[0] = 0x08 // flags: VNI present
	hdr[1], hdr[2], hdr[3] = 0, 0, 0
	binary.BigEndian.PutUint32(hdr[4:8], v.vni<<8)
	return VerdictForward
}

// Cost implements Handler: constant header work.
func (v *VXLANTunnel) Cost() CostModel {
	return CostModel{CyclesPerPacket: 140, CyclesPerByte: 0, StateBytes: 2048}
}
