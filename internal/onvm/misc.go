package onvm

import (
	"errors"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"greennfv/internal/traffic"
)

// Monitor is a passive flow-statistics NF: per-flow packet and byte
// counters, the statistical-analysis component §1 of the paper
// describes ("statistical analysis of the network flows enables
// GreenNFV to identify packet arrival rates and traffic patterns").
type Monitor struct {
	mu    sync.Mutex
	flows map[traffic.FiveTuple]*FlowCounter
	pkts  atomic.Uint64
	bytes atomic.Uint64
}

// FlowCounter accumulates per-flow totals.
type FlowCounter struct {
	Packets uint64
	Bytes   uint64
	First   float64
	Last    float64
}

// NewMonitor builds an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{flows: make(map[traffic.FiveTuple]*FlowCounter)}
}

// Name implements Handler.
func (mo *Monitor) Name() string { return "monitor" }

// Handle implements Handler.
func (mo *Monitor) Handle(m *Mbuf) Verdict {
	ft, err := traffic.ParseFrame(m.Data)
	if err != nil {
		return VerdictForward // monitors never drop
	}
	mo.pkts.Add(1)
	mo.bytes.Add(uint64(len(m.Data)))
	mo.mu.Lock()
	fc, ok := mo.flows[ft]
	if !ok {
		fc = &FlowCounter{First: m.Arrival}
		mo.flows[ft] = fc
	}
	fc.Packets++
	fc.Bytes += uint64(len(m.Data))
	fc.Last = m.Arrival
	mo.mu.Unlock()
	return VerdictForward
}

// Totals reports aggregate packet and byte counts.
func (mo *Monitor) Totals() (packets, bytes uint64) {
	return mo.pkts.Load(), mo.bytes.Load()
}

// Flow returns a copy of one flow's counters.
func (mo *Monitor) Flow(ft traffic.FiveTuple) (FlowCounter, bool) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	fc, ok := mo.flows[ft]
	if !ok {
		return FlowCounter{}, false
	}
	return *fc, true
}

// FlowCount reports the number of distinct flows seen.
func (mo *Monitor) FlowCount() int {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return len(mo.flows)
}

// Rates estimates per-flow packet rates over each flow's observed
// lifetime, sorted descending — the arrival-rate signal Ω the RL
// state vector consumes.
func (mo *Monitor) Rates() []float64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	rates := make([]float64, 0, len(mo.flows))
	for _, fc := range mo.flows {
		span := fc.Last - fc.First
		if span <= 0 {
			span = 1e-9
		}
		rates = append(rates, float64(fc.Packets)/span)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
	return rates
}

// Cost implements Handler: hash-map update per packet.
func (mo *Monitor) Cost() CostModel {
	return CostModel{CyclesPerPacket: 80, CyclesPerByte: 0, StateBytes: int64(mo.FlowCount())*96 + 8192}
}

// LoadBalancer distributes flows across backends by consistent
// five-tuple hashing, preserving per-flow ordering.
type LoadBalancer struct {
	backends int
	counts   []atomic.Uint64
}

// NewLoadBalancer builds a balancer over n backends.
func NewLoadBalancer(n int) (*LoadBalancer, error) {
	if n <= 0 {
		return nil, errors.New("onvm: load balancer needs at least one backend")
	}
	return &LoadBalancer{backends: n, counts: make([]atomic.Uint64, n)}, nil
}

// Name implements Handler.
func (lb *LoadBalancer) Name() string { return "loadbalancer" }

// Handle implements Handler: stamp the backend into the mbuf port and
// flow hash fields.
func (lb *LoadBalancer) Handle(m *Mbuf) Verdict {
	ft, err := traffic.ParseFrame(m.Data)
	if err != nil {
		return VerdictDrop
	}
	h := fnv.New32a()
	h.Write(ft.SrcIP[:])
	h.Write(ft.DstIP[:])
	h.Write([]byte{byte(ft.SrcPort >> 8), byte(ft.SrcPort), byte(ft.DstPort >> 8), byte(ft.DstPort), byte(ft.Proto)})
	// FNV-1a's low bits correlate for tuples whose fields differ by
	// the same byte (the prime is ≡3 mod 4, so two multiplies cancel
	// mod 4); finalize with murmur3's avalanche before reducing.
	m.FlowHash = fmix32(h.Sum32())
	backend := int(m.FlowHash % uint32(lb.backends))
	m.Port = uint16(backend)
	lb.counts[backend].Add(1)
	return VerdictForward
}

// fmix32 is murmur3's 32-bit finalizer: full avalanche so every
// input bit affects every output bit.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// BackendCounts reports per-backend packet totals.
func (lb *LoadBalancer) BackendCounts() []uint64 {
	out := make([]uint64, lb.backends)
	for i := range out {
		out[i] = lb.counts[i].Load()
	}
	return out
}

// Cost implements Handler.
func (lb *LoadBalancer) Cost() CostModel {
	return CostModel{CyclesPerPacket: 110, CyclesPerByte: 0, StateBytes: 4096}
}

// RateLimiter enforces a token-bucket packet rate in simulation time
// (mbuf arrival timestamps), dropping packets that exceed the
// contract — the policing NF of a TSP's SLA enforcement.
type RateLimiter struct {
	rate  float64 // tokens (packets) per second
	burst float64

	mu      sync.Mutex
	tokens  float64
	lastRef float64
	drops   atomic.Uint64
}

// NewRateLimiter builds a token bucket of `rate` packets/second with
// the given burst depth in packets.
func NewRateLimiter(rate, burst float64) (*RateLimiter, error) {
	if rate <= 0 || burst < 1 {
		return nil, errors.New("onvm: rate limiter needs positive rate and burst >= 1")
	}
	return &RateLimiter{rate: rate, burst: burst, tokens: burst}, nil
}

// Name implements Handler.
func (rl *RateLimiter) Name() string { return "ratelimiter" }

// Drops reports packets dropped by policing.
func (rl *RateLimiter) Drops() uint64 { return rl.drops.Load() }

// Handle implements Handler.
func (rl *RateLimiter) Handle(m *Mbuf) Verdict {
	rl.mu.Lock()
	if m.Arrival > rl.lastRef {
		rl.tokens += (m.Arrival - rl.lastRef) * rl.rate
		if rl.tokens > rl.burst {
			rl.tokens = rl.burst
		}
		rl.lastRef = m.Arrival
	}
	ok := rl.tokens >= 1
	if ok {
		rl.tokens--
	}
	rl.mu.Unlock()
	if !ok {
		rl.drops.Add(1)
		return VerdictDrop
	}
	return VerdictForward
}

// Cost implements Handler.
func (rl *RateLimiter) Cost() CostModel {
	return CostModel{CyclesPerPacket: 90, CyclesPerByte: 0, StateBytes: 1024}
}

// DPI is a lightweight deep-packet-inspection classifier: it labels
// packets by well-known port and payload heuristics and counts per
// class. Unlike the IDS it never drops.
type DPI struct {
	counts map[string]*atomic.Uint64
}

// dpiClasses in classification order.
var dpiClasses = []string{"http", "dns", "tls", "other"}

// NewDPI builds the classifier.
func NewDPI() *DPI {
	d := &DPI{counts: make(map[string]*atomic.Uint64, len(dpiClasses))}
	for _, c := range dpiClasses {
		d.counts[c] = &atomic.Uint64{}
	}
	return d
}

// Name implements Handler.
func (d *DPI) Name() string { return "dpi" }

// Handle implements Handler.
func (d *DPI) Handle(m *Mbuf) Verdict {
	ft, err := traffic.ParseFrame(m.Data)
	if err != nil {
		d.counts["other"].Add(1)
		return VerdictForward
	}
	class := "other"
	switch {
	case ft.DstPort == 53 || ft.SrcPort == 53:
		class = "dns"
	case ft.DstPort == 443 || ft.SrcPort == 443:
		class = "tls"
	case ft.DstPort == 80 || ft.SrcPort == 80:
		class = "http"
	default:
		if p := l4Payload(m.Data); len(p) >= 4 {
			switch {
			case p[0] == 'G' && p[1] == 'E' && p[2] == 'T' && p[3] == ' ':
				class = "http"
			case p[0] == 0x16 && p[1] == 0x03:
				class = "tls"
			}
		}
	}
	d.counts[class].Add(1)
	return VerdictForward
}

// Counts reports per-class packet totals.
func (d *DPI) Counts() map[string]uint64 {
	out := make(map[string]uint64, len(d.counts))
	for k, v := range d.counts {
		out[k] = v.Load()
	}
	return out
}

// Cost implements Handler: header plus a short payload peek.
func (d *DPI) Cost() CostModel {
	return CostModel{CyclesPerPacket: 200, CyclesPerByte: 0.3, StateBytes: 16384}
}
