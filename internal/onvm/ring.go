package onvm

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrRingSize is returned for ring capacities that are not powers of
// two (a DPDK rte_ring requirement this model keeps: the index mask
// trick needs it).
var ErrRingSize = errors.New("onvm: ring capacity must be a power of two >= 2")

// Ring is a bounded single-producer/single-consumer lock-free queue
// of *Mbuf, the equivalent of the two circular queues OpenNetVM gives
// each NF. Exactly one goroutine may enqueue and one may dequeue.
type Ring struct {
	mask uint64
	buf  []*Mbuf
	_    [64]byte // keep head and tail on separate cache lines
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
}

// NewRing builds a ring with the given power-of-two capacity.
func NewRing(capacity int) (*Ring, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("%w: got %d", ErrRingSize, capacity)
	}
	return &Ring{mask: uint64(capacity - 1), buf: make([]*Mbuf, capacity)}, nil
}

// MustNewRing is NewRing that panics on error.
func MustNewRing(capacity int) *Ring {
	r, err := NewRing(capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Cap reports the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len reports the number of queued packets (approximate under
// concurrency, exact when quiescent).
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Enqueue adds one packet; it reports false when the ring is full
// (the caller drops the packet, exactly like rte_ring).
func (r *Ring) Enqueue(m *Mbuf) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = m
	r.tail.Store(tail + 1)
	return true
}

// EnqueueBurst adds up to len(ms) packets and reports how many were
// accepted; the remainder should be dropped or retried by the caller.
func (r *Ring) EnqueueBurst(ms []*Mbuf) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.head.Load())
	n := uint64(len(ms))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = ms[i]
	}
	if n > 0 {
		r.tail.Store(tail + n)
	}
	return int(n)
}

// Dequeue removes one packet, or returns nil when the ring is empty.
func (r *Ring) Dequeue() *Mbuf {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil
	}
	m := r.buf[head&r.mask]
	r.buf[head&r.mask] = nil
	r.head.Store(head + 1)
	return m
}

// DequeueBurst removes up to len(dst) packets into dst and reports
// the count — the batched read the paper's batch-size knob controls.
func (r *Ring) DequeueBurst(dst []*Mbuf) int {
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		idx := (head + i) & r.mask
		dst[i] = r.buf[idx]
		r.buf[idx] = nil
	}
	if n > 0 {
		r.head.Store(head + n)
	}
	return int(n)
}

// MPMCRing is a bounded multi-producer/multi-consumer lock-free queue
// (Vyukov's algorithm), used where several NF workers feed one TX
// thread. Each slot carries a sequence number that encodes whether it
// is ready for a producer or a consumer.
type MPMCRing struct {
	mask  uint64
	slots []mpmcSlot
	_     [64]byte
	head  atomic.Uint64 // consumer position
	_     [64]byte
	tail  atomic.Uint64 // producer position
}

type mpmcSlot struct {
	seq atomic.Uint64
	m   *Mbuf
}

// NewMPMCRing builds an MPMC ring with power-of-two capacity.
func NewMPMCRing(capacity int) (*MPMCRing, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("%w: got %d", ErrRingSize, capacity)
	}
	r := &MPMCRing{mask: uint64(capacity - 1), slots: make([]mpmcSlot, capacity)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r, nil
}

// MustNewMPMCRing is NewMPMCRing that panics on error.
func MustNewMPMCRing(capacity int) *MPMCRing {
	r, err := NewMPMCRing(capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Cap reports the ring capacity.
func (r *MPMCRing) Cap() int { return len(r.slots) }

// Len reports the approximate number of queued packets.
func (r *MPMCRing) Len() int {
	n := int(r.tail.Load()) - int(r.head.Load())
	if n < 0 {
		return 0
	}
	return n
}

// Enqueue adds one packet from any goroutine; false means full.
func (r *MPMCRing) Enqueue(m *Mbuf) bool {
	pos := r.tail.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos: // slot free for this position
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.m = m
				slot.seq.Store(pos + 1) // publish to consumers
				return true
			}
			pos = r.tail.Load()
		case seq < pos: // slot still holds an unconsumed older element
			return false
		default: // another producer claimed it; reload
			pos = r.tail.Load()
		}
	}
}

// Dequeue removes one packet from any goroutine; nil means empty.
func (r *MPMCRing) Dequeue() *Mbuf {
	pos := r.head.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1: // slot published for this position
			if r.head.CompareAndSwap(pos, pos+1) {
				m := slot.m
				slot.m = nil
				slot.seq.Store(pos + uint64(len(r.slots))) // recycle for producers
				return m
			}
			pos = r.head.Load()
		case seq <= pos: // not yet published
			return nil
		default:
			pos = r.head.Load()
		}
	}
}

// DequeueBurst removes up to len(dst) packets and reports the count.
func (r *MPMCRing) DequeueBurst(dst []*Mbuf) int {
	n := 0
	for n < len(dst) {
		m := r.Dequeue()
		if m == nil {
			break
		}
		dst[n] = m
		n++
	}
	return n
}
