package onvm

import (
	"bytes"
	"testing"
	"time"

	"greennfv/internal/traffic"
)

// genSource adapts a traffic.Generator into a bounded Source.
func genSource(t *testing.T, seed int64, budget int, flows ...*traffic.Flow) Source {
	t.Helper()
	gen, err := traffic.NewGenerator(seed, flows...)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	return &GeneratorSource{Next: func() ([]byte, float64, bool) {
		if n >= budget {
			return nil, 0, false
		}
		n++
		ev := gen.Next()
		return ev.Frame, ev.Time, true
	}}
}

func testChain(t *testing.T, cfg ChainConfig) *Chain {
	t.Helper()
	fw := NewFirewall(nil, true)
	nat := NewNAT([4]byte{203, 0, 113, 1})
	mon := NewMonitor()
	c, err := NewChain("c1", cfg, fw, nat, mon)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainConstruction(t *testing.T) {
	c := testChain(t, DefaultChainConfig())
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Head().Name() != "firewall" || c.Tail().Name() != "monitor" {
		t.Errorf("order: %v", c)
	}
	if got := c.String(); got != "c1[firewall -> nat -> monitor]" {
		t.Errorf("String = %q", got)
	}
	if len(c.CostModels()) != 3 {
		t.Error("cost models missing")
	}
	if err := c.SetBatchAll(64); err != nil {
		t.Fatal(err)
	}
	for _, nf := range c.NFs() {
		if nf.Batch() != 64 {
			t.Errorf("%s batch = %d", nf.Name(), nf.Batch())
		}
	}
	if err := c.SetBatchAll(0); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := NewChain("", DefaultChainConfig(), NewMonitor()); err == nil {
		t.Error("unnamed chain accepted")
	}
	if _, err := NewChain("x", DefaultChainConfig()); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewChain("x", ChainConfig{RingCap: 3, Batch: 1}, NewMonitor()); err == nil {
		t.Error("bad ring capacity accepted")
	}
}

func TestManagerEndToEnd(t *testing.T) {
	chain := testChain(t, ChainConfig{RingCap: 1024, Batch: 32})
	mgr, err := NewManager(ManagerConfig{PoolSize: 2048, PollSpins: 8, DrainTimeout: 10 * time.Second}, chain)
	if err != nil {
		t.Fatal(err)
	}
	flow, _ := traffic.SimpleFlow(1, 100000, 128)
	const budget = 5000
	res, err := mgr.Run([]Source{genSource(t, 1, budget, flow)}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatal("pipeline did not drain")
	}
	if res.Injected != budget {
		t.Errorf("injected = %d, want %d", res.Injected, budget)
	}
	// Conservation: every injected packet either completed or was
	// dropped with a counted cause.
	stats := mgr.Stats()
	accepted := stats.RxPackets.Load()
	var verdictDrops, ringDrops uint64
	for _, nf := range chain.NFs() {
		verdictDrops += nf.Stats().Dropped.Load()
		ringDrops += nf.Stats().RingDrops.Load()
	}
	total := res.Completed + verdictDrops + ringDrops +
		stats.RxDropsNoMbuf.Load() + stats.RxDropsRing.Load() + stats.RxDropsTooLong.Load()
	if total != budget {
		t.Errorf("conservation violated: completed=%d verdict=%d ring=%d rxdrops=%d+%d+%d sum=%d want=%d",
			res.Completed, verdictDrops, ringDrops,
			stats.RxDropsNoMbuf.Load(), stats.RxDropsRing.Load(), stats.RxDropsTooLong.Load(), total, budget)
	}
	if accepted != res.Completed+verdictDrops+ringDrops {
		t.Errorf("accepted %d != completed %d + drops %d", accepted, res.Completed, verdictDrops+ringDrops)
	}
	// The permissive chain should complete everything it accepted.
	if res.Completed != accepted {
		t.Errorf("completed = %d, accepted = %d", res.Completed, accepted)
	}
	// The monitor at the tail saw every completed packet.
	mon := chain.Tail().Handler().(*Monitor)
	pk, _ := mon.Totals()
	if pk != res.Completed {
		t.Errorf("monitor saw %d, completed %d", pk, res.Completed)
	}
	if res.VirtualSpan <= 0 {
		t.Error("virtual span not recorded")
	}
	// All mbufs returned.
	if mgr.Pool().Available() != mgr.Pool().Size() {
		t.Errorf("leaked mbufs: %d/%d", mgr.Pool().Available(), mgr.Pool().Size())
	}
}

func TestManagerMultipleChains(t *testing.T) {
	c1 := testChain(t, ChainConfig{RingCap: 512, Batch: 16})
	fw2 := NewFirewall([]FirewallRule{{DstPortLo: 9, DstPortHi: 9, Action: FirewallDeny}}, true)
	c2, err := NewChain("c2", ChainConfig{RingCap: 512, Batch: 16}, fw2, NewDPI())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(ManagerConfig{PoolSize: 4096, PollSpins: 4, DrainTimeout: 10 * time.Second}, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := traffic.SimpleFlow(1, 50000, 64)
	f2, _ := traffic.SimpleFlow(2, 50000, 64) // dst port 9 → denied by fw2
	res, err := mgr.Run([]Source{
		genSource(t, 1, 2000, f1),
		genSource(t, 2, 2000, f2),
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatal("did not drain")
	}
	if c1.Completed() == 0 {
		t.Error("chain 1 completed nothing")
	}
	// Chain 2's firewall denies everything (SimpleFlow dst port is 9).
	// Under CPU starvation some packets may legitimately drop at the
	// RX ring instead of reaching the firewall, so assert the policy
	// outcome (nothing completes; everything accepted is denied), not
	// an exact denial count.
	if c2.Completed() != 0 {
		t.Errorf("chain 2 completed %d, want 0 (all denied)", c2.Completed())
	}
	if fw2.Denied() == 0 {
		t.Error("fw2 denied nothing")
	}
	fw2Seen := c2.Head().Stats().RxPackets.Load()
	if fw2.Denied() != fw2Seen {
		t.Errorf("fw2 denied %d of %d packets seen", fw2.Denied(), fw2Seen)
	}
}

func TestManagerSourceCountMismatch(t *testing.T) {
	mgr, _ := NewManager(DefaultManagerConfig(), testChain(t, DefaultChainConfig()))
	if _, err := mgr.Run(nil, 10); err == nil {
		t.Error("mismatched sources accepted")
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(DefaultManagerConfig()); err == nil {
		t.Error("chainless manager accepted")
	}
	if _, err := NewManager(ManagerConfig{PoolSize: 10, PollSpins: -1}, testChain(t, DefaultChainConfig())); err == nil {
		t.Error("negative PollSpins accepted")
	}
	if _, err := NewManager(ManagerConfig{PoolSize: 0, PollSpins: 1}, testChain(t, DefaultChainConfig())); err == nil {
		t.Error("zero pool accepted")
	}
}

func TestManagerOversizedFrameCounted(t *testing.T) {
	chain := testChain(t, DefaultChainConfig())
	mgr, _ := NewManager(ManagerConfig{PoolSize: 64, PollSpins: 2, DrainTimeout: 5 * time.Second}, chain)
	big := bytes.Repeat([]byte{0}, MbufSize)
	sent := false
	src := &GeneratorSource{Next: func() ([]byte, float64, bool) {
		if sent {
			return nil, 0, false
		}
		sent = true
		return big, 0, true
	}}
	if _, err := mgr.Run([]Source{src}, 10); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().RxDropsTooLong.Load() != 1 {
		t.Errorf("too-long drops = %d, want 1", mgr.Stats().RxDropsTooLong.Load())
	}
}

// Full IDS+crypto chain with encapsulation: heavier integration path.
func TestManagerHeavyChain(t *testing.T) {
	ids, _ := NewIDS([][]byte{[]byte("malware")}, true)
	cr, _ := NewCryptoNF(bytes.Repeat([]byte{9}, 16))
	vx, _ := NewVXLANTunnel(7, false)
	chain, err := NewChain("heavy", ChainConfig{RingCap: 1024, Batch: 32}, ids, cr, vx)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(ManagerConfig{PoolSize: 2048, PollSpins: 8, DrainTimeout: 10 * time.Second}, chain)
	if err != nil {
		t.Fatal(err)
	}
	flow, _ := traffic.SimpleFlow(3, 10000, 512)
	res, err := mgr.Run([]Source{genSource(t, 5, 1000, flow)}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained || res.Completed != 1000 {
		t.Errorf("completed = %d drained=%v, want 1000/true", res.Completed, res.Drained)
	}
	if cr.Processed() != 1000 {
		t.Errorf("crypto processed %d", cr.Processed())
	}
}

func TestNFBatchValidation(t *testing.T) {
	nf, err := NewNF(NewMonitor(), 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := nf.SetBatch(2000); err == nil {
		t.Error("oversized batch accepted")
	}
	if nf.RingLen() != 0 {
		t.Error("fresh NF has queued packets")
	}
	if _, err := NewNF(nil, 64, 32); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := NewNF(NewMonitor(), 63, 32); err == nil {
		t.Error("bad ring cap accepted")
	}
	if _, err := NewNF(NewMonitor(), 64, 0); err == nil {
		t.Error("zero batch accepted")
	}
}
