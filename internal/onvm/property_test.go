package onvm

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"greennfv/internal/traffic"
)

// Conservation under randomized chains: for any chain composition,
// batch size and ring capacity, every injected packet is either
// completed or attributed to a counted drop cause, and no mbuf leaks.
func TestRandomChainConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260610))
	builders := []func() Handler{
		func() Handler { return NewFirewall(nil, true) },
		func() Handler {
			return NewFirewall([]FirewallRule{
				{DstPortLo: 9, DstPortHi: 9, Action: FirewallDeny},
			}, true)
		},
		func() Handler { return NewNAT([4]byte{203, 0, 113, 9}) },
		func() Handler { h, _ := NewRouter(nil, 0); return h },
		func() Handler { h, _ := NewIDS([][]byte{[]byte("zzz-never-matches")}, true); return h },
		func() Handler { h, _ := NewCryptoNF(bytes.Repeat([]byte{3}, 16)); return h },
		func() Handler { return NewMonitor() },
		func() Handler { h, _ := NewLoadBalancer(3); return h },
		func() Handler { h, _ := NewRateLimiter(5e5, 64); return h },
		func() Handler { return NewDPI() },
	}
	for trial := 0; trial < 10; trial++ {
		nNFs := 1 + rng.Intn(4)
		handlers := make([]Handler, nNFs)
		for i := range handlers {
			handlers[i] = builders[rng.Intn(len(builders))]()
		}
		ringCap := 1 << (6 + rng.Intn(5)) // 64..1024
		batch := 1 + rng.Intn(64)
		chain, err := NewChain("prop", ChainConfig{RingCap: ringCap, Batch: batch}, handlers...)
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := NewManager(ManagerConfig{
			PoolSize: 1024, PollSpins: 4, DrainTimeout: 10 * time.Second,
		}, chain)
		if err != nil {
			t.Fatal(err)
		}
		flow, err := traffic.SimpleFlow(trial+1, 1e5+rng.Float64()*9e5, 64+rng.Intn(512))
		if err != nil {
			t.Fatal(err)
		}
		gen, err := traffic.NewGenerator(int64(trial), flow)
		if err != nil {
			t.Fatal(err)
		}
		const budget = 3000
		sent := 0
		src := &GeneratorSource{Next: func() ([]byte, float64, bool) {
			if sent >= budget {
				return nil, 0, false
			}
			sent++
			ev := gen.Next()
			return ev.Frame, ev.Time, true
		}}
		res, err := mgr.Run([]Source{src}, budget)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Drained {
			t.Fatalf("trial %d: pipeline did not drain", trial)
		}
		st := mgr.Stats()
		var verdictDrops, ringDrops uint64
		for _, nf := range chain.NFs() {
			verdictDrops += nf.Stats().Dropped.Load()
			ringDrops += nf.Stats().RingDrops.Load()
		}
		accounted := res.Completed + verdictDrops + ringDrops +
			st.RxDropsNoMbuf.Load() + st.RxDropsRing.Load() + st.RxDropsTooLong.Load()
		if accounted != budget {
			t.Fatalf("trial %d (%v, ring %d, batch %d): %d accounted of %d",
				trial, chain, ringCap, batch, accounted, budget)
		}
		if mgr.Pool().Available() != mgr.Pool().Size() {
			t.Fatalf("trial %d: leaked %d mbufs", trial,
				mgr.Pool().Size()-mgr.Pool().Available())
		}
	}
}

// NFs must tolerate arbitrary frame contents without panicking: feed
// every library NF random garbage mbufs.
func TestHandlersSurviveGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := MustNewMempool(4)
	lb, _ := NewLoadBalancer(2)
	rl, _ := NewRateLimiter(1e5, 8)
	ids, _ := NewIDS([][]byte{[]byte("sig")}, true)
	cr, _ := NewCryptoNF(bytes.Repeat([]byte{1}, 16))
	vxE, _ := NewVXLANTunnel(5, false)
	vxD, _ := NewVXLANTunnel(5, true)
	rt, _ := NewRouter(nil, 0)
	handlers := []Handler{
		NewFirewall(nil, true), NewNAT([4]byte{1, 1, 1, 1}), rt,
		ids, cr, NewMonitor(), lb, rl, NewDPI(), vxE, vxD,
	}
	for trial := 0; trial < 300; trial++ {
		n := 14 + rng.Intn(200)
		m := pool.Get()
		buf, err := m.Reset(n)
		if err != nil {
			t.Fatal(err)
		}
		rng.Read(buf)
		h := handlers[rng.Intn(len(handlers))]
		_ = h.Handle(m) // any verdict is fine; panics are not
		m.Free()
	}
}
