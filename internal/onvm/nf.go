package onvm

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Verdict is a handler's per-packet decision.
type Verdict int

// Verdicts, mirroring OpenNetVM's packet actions.
const (
	// VerdictForward passes the packet to the next chain stage.
	VerdictForward Verdict = iota
	// VerdictDrop discards the packet.
	VerdictDrop
)

// CostModel describes a handler's computational profile. The
// performance model uses it to derive service times and cache
// working sets for the simulated testbed, so heavier NFs (IDS,
// crypto) genuinely cost more than light ones (NAT, firewall),
// matching the paper's observation that NFs range from lightweight
// to heavyweight.
type CostModel struct {
	// CyclesPerPacket is the fixed per-packet instruction cost.
	CyclesPerPacket float64
	// CyclesPerByte is the payload-touching cost (crypto, DPI).
	CyclesPerByte float64
	// StateBytes is the NF's cache-resident state (tables, rings).
	StateBytes int64
}

// Handler is a network function's packet-processing logic.
type Handler interface {
	// Name identifies the NF for stats and CAT group assignment.
	Name() string
	// Handle processes one packet in place and returns a verdict.
	Handle(m *Mbuf) Verdict
	// Cost reports the handler's computational profile.
	Cost() CostModel
}

// NFStats counts a network function's activity. All fields are
// atomically updated and may be read concurrently.
type NFStats struct {
	RxPackets   atomic.Uint64
	TxPackets   atomic.Uint64
	Dropped     atomic.Uint64 // verdict drops
	RingDrops   atomic.Uint64 // downstream ring full
	Wakeups     atomic.Uint64
	PollRounds  atomic.Uint64
	EmptyPolls  atomic.Uint64
	BatchesSeen atomic.Uint64
}

// Snapshot returns a plain-value copy of the counters.
func (s *NFStats) Snapshot() NFStatsSnapshot {
	return NFStatsSnapshot{
		RxPackets:   s.RxPackets.Load(),
		TxPackets:   s.TxPackets.Load(),
		Dropped:     s.Dropped.Load(),
		RingDrops:   s.RingDrops.Load(),
		Wakeups:     s.Wakeups.Load(),
		PollRounds:  s.PollRounds.Load(),
		EmptyPolls:  s.EmptyPolls.Load(),
		BatchesSeen: s.BatchesSeen.Load(),
	}
}

// NFStatsSnapshot is a point-in-time copy of NFStats.
type NFStatsSnapshot struct {
	RxPackets, TxPackets, Dropped, RingDrops uint64
	Wakeups, PollRounds, EmptyPolls          uint64
	BatchesSeen                              uint64
}

// NF is one deployed network function instance: a handler plus its
// RX ring, a reference to the next stage, runtime knobs and stats.
type NF struct {
	handler Handler
	rx      *Ring
	stats   NFStats

	// batch is the dequeue burst size — the paper's batch-size knob.
	batch atomic.Int64

	// wake is the callback half of the poll/callback mix: the
	// upstream stage signals it after enqueueing into an empty ring
	// so a sleeping NF resumes without busy-polling.
	wake chan struct{}

	// next is the downstream ring (nil for the chain tail, in which
	// case packets complete and are freed by the worker).
	next *NF
}

// NewNF wraps a handler with an RX ring of the given capacity.
func NewNF(h Handler, ringCap, batch int) (*NF, error) {
	if h == nil {
		return nil, errors.New("onvm: nil handler")
	}
	rx, err := NewRing(ringCap)
	if err != nil {
		return nil, fmt.Errorf("onvm: %s: %w", h.Name(), err)
	}
	nf := &NF{handler: h, rx: rx, wake: make(chan struct{}, 1)}
	if err := nf.SetBatch(batch); err != nil {
		return nil, err
	}
	return nf, nil
}

// Name reports the handler name.
func (nf *NF) Name() string { return nf.handler.Name() }

// Handler returns the wrapped handler.
func (nf *NF) Handler() Handler { return nf.handler }

// Stats exposes the NF's counters.
func (nf *NF) Stats() *NFStats { return &nf.stats }

// SetBatch updates the dequeue burst size at runtime (1–1024).
func (nf *NF) SetBatch(n int) error {
	if n < 1 || n > 1024 {
		return fmt.Errorf("onvm: batch %d outside [1,1024]", n)
	}
	nf.batch.Store(int64(n))
	return nil
}

// Batch reports the current dequeue burst size.
func (nf *NF) Batch() int { return int(nf.batch.Load()) }

// RingLen reports the RX ring occupancy.
func (nf *NF) RingLen() int { return nf.rx.Len() }

// deliver enqueues a packet into this NF's RX ring and signals the
// wakeup channel (the callback half of the poll/callback mix). The
// signal is unconditional — a conditional "only when the ring was
// empty" check races with the consumer's drain-then-park sequence and
// can strand a packet; the buffered channel makes the unconditional
// try-send cheap. It reports false when the ring was full.
func (nf *NF) deliver(m *Mbuf) bool {
	if !nf.rx.Enqueue(m) {
		return false
	}
	select {
	case nf.wake <- struct{}{}:
	default:
	}
	return true
}

// processBurst dequeues and handles up to one batch, forwarding
// survivors downstream (or freeing them at the chain tail). It
// reports the number of packets taken off the ring.
func (nf *NF) processBurst(scratch []*Mbuf) int {
	b := nf.Batch()
	if b > len(scratch) {
		b = len(scratch)
	}
	n := nf.rx.DequeueBurst(scratch[:b])
	if n == 0 {
		nf.stats.EmptyPolls.Add(1)
		return 0
	}
	nf.stats.BatchesSeen.Add(1)
	nf.stats.RxPackets.Add(uint64(n))
	for i := 0; i < n; i++ {
		m := scratch[i]
		scratch[i] = nil
		if nf.handler.Handle(m) == VerdictDrop {
			nf.stats.Dropped.Add(1)
			m.Free()
			continue
		}
		m.ChainPos++
		if nf.next == nil {
			nf.stats.TxPackets.Add(1)
			m.Free()
			continue
		}
		if !nf.next.deliver(m) {
			nf.stats.RingDrops.Add(1)
			m.Free()
			continue
		}
		nf.stats.TxPackets.Add(1)
	}
	return n
}
