package onvm

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"greennfv/internal/traffic"
)

// FirewallAction is a rule's disposition.
type FirewallAction int

// Firewall rule actions.
const (
	// FirewallAccept forwards matching packets.
	FirewallAccept FirewallAction = iota
	// FirewallDeny drops matching packets.
	FirewallDeny
)

// FirewallRule matches packets on prefixes and port ranges; zero
// fields are wildcards.
type FirewallRule struct {
	// SrcPrefix and SrcPrefixLen match the source address (len 0 = any).
	SrcPrefix    [4]byte
	SrcPrefixLen int
	// DstPrefix and DstPrefixLen match the destination address.
	DstPrefix    [4]byte
	DstPrefixLen int
	// SrcPortLo/Hi and DstPortLo/Hi bound ports (0,0 = any).
	SrcPortLo, SrcPortHi uint16
	DstPortLo, DstPortHi uint16
	// Proto matches the L4 protocol (0 = any).
	Proto traffic.Proto
	// Action applies on match.
	Action FirewallAction
}

func prefixMatch(addr, prefix [4]byte, bits int) bool {
	if bits <= 0 {
		return true
	}
	if bits > 32 {
		bits = 32
	}
	a := binary.BigEndian.Uint32(addr[:])
	p := binary.BigEndian.Uint32(prefix[:])
	shift := uint(32 - bits)
	return a>>shift == p>>shift
}

func portMatch(port, lo, hi uint16) bool {
	if lo == 0 && hi == 0 {
		return true
	}
	return port >= lo && port <= hi
}

// Matches reports whether a five-tuple satisfies the rule.
func (r *FirewallRule) Matches(ft traffic.FiveTuple) bool {
	if r.Proto != 0 && r.Proto != ft.Proto {
		return false
	}
	if !prefixMatch(ft.SrcIP, r.SrcPrefix, r.SrcPrefixLen) {
		return false
	}
	if !prefixMatch(ft.DstIP, r.DstPrefix, r.DstPrefixLen) {
		return false
	}
	return portMatch(ft.SrcPort, r.SrcPortLo, r.SrcPortHi) &&
		portMatch(ft.DstPort, r.DstPortLo, r.DstPortHi)
}

// Firewall is a first-match rule-list packet filter, one of the
// paper's "lightweight" NF examples. Unmatched packets follow the
// default action.
type Firewall struct {
	rules     []FirewallRule
	defaultOK bool
	denied    atomic.Uint64
}

// NewFirewall builds a firewall; defaultAccept selects the verdict
// for packets matching no rule.
func NewFirewall(rules []FirewallRule, defaultAccept bool) *Firewall {
	cp := make([]FirewallRule, len(rules))
	copy(cp, rules)
	return &Firewall{rules: cp, defaultOK: defaultAccept}
}

// Name implements Handler.
func (f *Firewall) Name() string { return "firewall" }

// Denied reports how many packets the firewall dropped.
func (f *Firewall) Denied() uint64 { return f.denied.Load() }

// Handle implements Handler.
func (f *Firewall) Handle(m *Mbuf) Verdict {
	ft, err := traffic.ParseFrame(m.Data)
	if err != nil {
		f.denied.Add(1)
		return VerdictDrop // non-IPv4 is dropped by policy
	}
	for i := range f.rules {
		if f.rules[i].Matches(ft) {
			if f.rules[i].Action == FirewallDeny {
				f.denied.Add(1)
				return VerdictDrop
			}
			return VerdictForward
		}
	}
	if f.defaultOK {
		return VerdictForward
	}
	f.denied.Add(1)
	return VerdictDrop
}

// Cost implements Handler: header-only work plus a small rule table.
func (f *Firewall) Cost() CostModel {
	return CostModel{
		CyclesPerPacket: 120 + 8*float64(len(f.rules)),
		CyclesPerByte:   0,
		StateBytes:      int64(len(f.rules))*32 + 4096,
	}
}

// String summarizes the firewall configuration.
func (f *Firewall) String() string {
	return fmt.Sprintf("firewall{%d rules, defaultAccept=%v}", len(f.rules), f.defaultOK)
}
