package onvm

import (
	"errors"
	"fmt"
	"strings"
)

// Chain is a service chain: network functions in series, each with
// its own RX ring, exactly as the paper's testbed deploys them
// ("Network functions are chained with a series connection").
type Chain struct {
	name string
	nfs  []*NF
}

// ChainConfig sizes a chain's per-NF resources.
type ChainConfig struct {
	// RingCap is each NF's RX ring capacity (power of two).
	RingCap int
	// Batch is the initial dequeue burst size for every NF.
	Batch int
}

// DefaultChainConfig mirrors OpenNetVM defaults: 4096-entry rings,
// 32-packet bursts.
func DefaultChainConfig() ChainConfig {
	return ChainConfig{RingCap: 4096, Batch: 32}
}

// NewChain wires handlers into a chain. The first handler receives
// RX traffic; the last handler's survivors count as completed.
func NewChain(name string, cfg ChainConfig, handlers ...Handler) (*Chain, error) {
	if name == "" {
		return nil, errors.New("onvm: chain needs a name")
	}
	if len(handlers) == 0 {
		return nil, errors.New("onvm: chain needs at least one NF")
	}
	c := &Chain{name: name}
	for _, h := range handlers {
		nf, err := NewNF(h, cfg.RingCap, cfg.Batch)
		if err != nil {
			return nil, fmt.Errorf("onvm: chain %s: %w", name, err)
		}
		c.nfs = append(c.nfs, nf)
	}
	for i := 0; i < len(c.nfs)-1; i++ {
		c.nfs[i].next = c.nfs[i+1]
	}
	return c, nil
}

// Name reports the chain name.
func (c *Chain) Name() string { return c.name }

// Len reports the number of NFs.
func (c *Chain) Len() int { return len(c.nfs) }

// NFs returns the chain's NF instances in order.
func (c *Chain) NFs() []*NF { return c.nfs }

// Head returns the first NF (the chain's ingress).
func (c *Chain) Head() *NF { return c.nfs[0] }

// Tail returns the last NF.
func (c *Chain) Tail() *NF { return c.nfs[len(c.nfs)-1] }

// SetBatchAll updates the burst size of every NF in the chain.
func (c *Chain) SetBatchAll(n int) error {
	for _, nf := range c.nfs {
		if err := nf.SetBatch(n); err != nil {
			return err
		}
	}
	return nil
}

// CostModels reports each NF's computational profile in chain order,
// the hook the performance model uses to derive chain capacity.
func (c *Chain) CostModels() []CostModel {
	out := make([]CostModel, len(c.nfs))
	for i, nf := range c.nfs {
		out[i] = nf.Handler().Cost()
	}
	return out
}

// Completed reports packets that made it through the whole chain.
func (c *Chain) Completed() uint64 { return c.Tail().Stats().TxPackets.Load() }

// String renders the chain topology.
func (c *Chain) String() string {
	names := make([]string, len(c.nfs))
	for i, nf := range c.nfs {
		names[i] = nf.Name()
	}
	return c.name + "[" + strings.Join(names, " -> ") + "]"
}
