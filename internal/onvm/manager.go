package onvm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Source feeds frames into the manager's RX path: the interface a
// traffic generator implements. NextFrame returns the frame bytes,
// its arrival timestamp (simulation seconds) and false when the
// source is exhausted. The returned slice may be reused by the
// source; the manager copies it into an mbuf immediately.
type Source interface {
	NextFrame() (frame []byte, arrival float64, ok bool)
}

// ManagerConfig sizes the manager.
type ManagerConfig struct {
	// PoolSize is the mempool capacity in mbufs (the DMA buffer
	// stand-in: exhaustion is an RX drop).
	PoolSize int
	// PollSpins is how many empty poll rounds an NF worker spins
	// before parking on its wakeup channel — the "mix of callback and
	// polling" the paper implements. 0 parks immediately (pure
	// callback); large values approximate DPDK busy-polling.
	PollSpins int
	// DrainTimeout bounds how long Run waits for in-flight packets
	// after the source ends.
	DrainTimeout time.Duration
}

// DefaultManagerConfig returns production-like defaults.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{PoolSize: 8192, PollSpins: 64, DrainTimeout: 5 * time.Second}
}

// ManagerStats aggregates RX-path counters.
type ManagerStats struct {
	RxPackets      atomic.Uint64
	RxDropsNoMbuf  atomic.Uint64 // mempool exhausted (DMA buffer full)
	RxDropsRing    atomic.Uint64 // first NF ring full
	RxDropsTooLong atomic.Uint64 // frame exceeds mbuf capacity
}

// Manager is the ONVM controller: it owns the mempool, runs one
// worker goroutine per NF, moves RX traffic into chain heads, and
// exposes the knobs GreenNFV tunes at runtime.
type Manager struct {
	cfg    ManagerConfig
	pool   *Mempool
	chains []*Chain
	stats  ManagerStats

	mu      sync.Mutex
	running bool
}

// NewManager builds a manager over the given chains.
func NewManager(cfg ManagerConfig, chains ...*Chain) (*Manager, error) {
	if len(chains) == 0 {
		return nil, errors.New("onvm: manager needs at least one chain")
	}
	if cfg.PollSpins < 0 {
		return nil, errors.New("onvm: PollSpins cannot be negative")
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	pool, err := NewMempool(cfg.PoolSize)
	if err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg, pool: pool, chains: chains}, nil
}

// Stats exposes the manager's RX counters.
func (mgr *Manager) Stats() *ManagerStats { return &mgr.stats }

// Pool exposes the mempool (to resize experiments' DMA model).
func (mgr *Manager) Pool() *Mempool { return mgr.pool }

// Chains returns the managed chains.
func (mgr *Manager) Chains() []*Chain { return mgr.chains }

// RunResult summarizes one Run invocation.
type RunResult struct {
	// Injected is the number of frames accepted into the pipeline.
	Injected uint64
	// Completed is the number of packets that traversed their whole
	// chain.
	Completed uint64
	// Duration is the wall-clock processing time.
	Duration time.Duration
	// VirtualSpan is the simulated time span of the injected traffic
	// (last arrival − first arrival).
	VirtualSpan float64
	// Drained reports whether all in-flight packets completed before
	// the drain timeout.
	Drained bool
}

// Run injects up to maxPackets frames from each source (one source
// per chain, positionally matched) through the pipeline, waits for
// the pipeline to drain, and returns a summary. Run is serialized:
// concurrent calls error.
func (mgr *Manager) Run(sources []Source, maxPackets int) (RunResult, error) {
	if len(sources) != len(mgr.chains) {
		return RunResult{}, fmt.Errorf("onvm: %d sources for %d chains", len(sources), len(mgr.chains))
	}
	mgr.mu.Lock()
	if mgr.running {
		mgr.mu.Unlock()
		return RunResult{}, errors.New("onvm: manager already running")
	}
	mgr.running = true
	mgr.mu.Unlock()
	defer func() {
		mgr.mu.Lock()
		mgr.running = false
		mgr.mu.Unlock()
	}()

	done := make(chan struct{})
	var workers sync.WaitGroup
	for _, chain := range mgr.chains {
		for _, nf := range chain.NFs() {
			workers.Add(1)
			go func(nf *NF) {
				defer workers.Done()
				mgr.nfWorker(nf, done)
			}(nf)
		}
	}

	start := time.Now()
	var injected uint64

	// RX: one goroutine per chain so sources interleave like
	// independent NIC queues. Each tracks its own arrival span;
	// spans merge after the join.
	type rxSpan struct {
		first, last float64
		set         bool
	}
	spans := make([]rxSpan, len(mgr.chains))
	var rx sync.WaitGroup
	for i, chain := range mgr.chains {
		rx.Add(1)
		go func(src Source, head *NF, span *rxSpan) {
			defer rx.Done()
			for n := 0; n < maxPackets; n++ {
				frame, arrival, ok := src.NextFrame()
				if !ok {
					return
				}
				mgr.rxOne(frame, arrival, head)
				if !span.set {
					span.first, span.set = arrival, true
				}
				if arrival > span.last {
					span.last = arrival
				}
				atomic.AddUint64(&injected, 1)
				// Yield periodically, and back off when the head ring
				// saturates, so NF workers get scheduled even on a
				// single-core host (the NIC would pace arrivals in
				// real time; as-fast-as-possible injection must not
				// starve the pipeline).
				if n&63 == 63 || head.RingLen() > head.rx.Cap()/2 {
					runtime.Gosched()
				}
			}
		}(sources[i], chain.Head(), &spans[i])
	}
	rx.Wait()

	// Drain: wait for every mbuf to return to the pool.
	drained := mgr.waitDrain()
	close(done)
	workers.Wait()

	var completed uint64
	for _, chain := range mgr.chains {
		completed += chain.Completed()
	}
	var firstArrival, lastArrival float64
	anySet := false
	for _, s := range spans {
		if !s.set {
			continue
		}
		if !anySet || s.first < firstArrival {
			firstArrival = s.first
		}
		if s.last > lastArrival {
			lastArrival = s.last
		}
		anySet = true
	}
	return RunResult{
		Injected:    atomic.LoadUint64(&injected),
		Completed:   completed,
		Duration:    time.Since(start),
		VirtualSpan: lastArrival - firstArrival,
		Drained:     drained,
	}, nil
}

// rxOne copies one frame into an mbuf and delivers it to a chain
// head, accounting drops by cause.
func (mgr *Manager) rxOne(frame []byte, arrival float64, head *NF) {
	if len(frame) > MbufSize-Headroom {
		mgr.stats.RxDropsTooLong.Add(1)
		return
	}
	m := mgr.pool.Get()
	if m == nil {
		mgr.stats.RxDropsNoMbuf.Add(1)
		return
	}
	buf, err := m.Reset(len(frame))
	if err != nil {
		m.Free()
		mgr.stats.RxDropsTooLong.Add(1)
		return
	}
	copy(buf, frame)
	m.Arrival = arrival
	if !head.deliver(m) {
		m.Free()
		mgr.stats.RxDropsRing.Add(1)
		return
	}
	mgr.stats.RxPackets.Add(1)
}

// nfWorker is an NF's processing loop: poll up to PollSpins empty
// rounds, then park on the wakeup channel until the upstream stage
// signals — the paper's hybrid of poll-mode DPDK and callbacks.
func (mgr *Manager) nfWorker(nf *NF, done <-chan struct{}) {
	scratch := make([]*Mbuf, 1024)
	idle := 0
	for {
		n := nf.processBurst(scratch)
		nf.stats.PollRounds.Add(1)
		if n > 0 {
			idle = 0
			continue
		}
		idle++
		if idle < mgr.cfg.PollSpins {
			select {
			case <-done:
				// Final sweep so no packet is stranded mid-ring.
				for nf.processBurst(scratch) > 0 {
				}
				return
			default:
				runtime.Gosched()
			}
			continue
		}
		select {
		case <-nf.wake:
			nf.stats.Wakeups.Add(1)
			idle = 0
		case <-done:
			for nf.processBurst(scratch) > 0 {
			}
			return
		}
	}
}

// waitDrain blocks until every mbuf has returned to the pool or the
// configured timeout elapses, reporting success.
func (mgr *Manager) waitDrain() bool {
	deadline := time.Now().Add(mgr.cfg.DrainTimeout)
	for time.Now().Before(deadline) {
		if mgr.pool.Available() == mgr.pool.Size() {
			return true
		}
		runtime.Gosched()
		time.Sleep(100 * time.Microsecond)
	}
	return mgr.pool.Available() == mgr.pool.Size()
}

// GeneratorSource adapts a traffic generator ("NextFrame" budget is
// enforced by Run) to the Source interface.
type GeneratorSource struct {
	// Next returns the same triple as Source.NextFrame.
	Next func() (frame []byte, arrival float64, ok bool)
}

// NextFrame implements Source.
func (g *GeneratorSource) NextFrame() ([]byte, float64, bool) { return g.Next() }
