package onvm

import (
	"encoding/binary"
	"sync"

	"greennfv/internal/traffic"
)

// NAT is a source-NAT network function: it rewrites the source
// address of outbound packets to the NAT's external address,
// allocates a stable translated port per flow, and incrementally
// fixes the IPv4 header checksum (RFC 1624), as a production NAT
// must. It is one of the paper's lightweight NF examples.
type NAT struct {
	external [4]byte

	mu       sync.Mutex
	bindings map[traffic.FiveTuple]uint16
	nextPort uint16
}

// NewNAT builds a source NAT translating to the given external IPv4
// address.
func NewNAT(external [4]byte) *NAT {
	return &NAT{
		external: external,
		bindings: make(map[traffic.FiveTuple]uint16),
		nextPort: 20000,
	}
}

// Name implements Handler.
func (n *NAT) Name() string { return "nat" }

// Bindings reports the number of active flow translations.
func (n *NAT) Bindings() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.bindings)
}

// Handle implements Handler.
func (n *NAT) Handle(m *Mbuf) Verdict {
	ft, err := traffic.ParseFrame(m.Data)
	if err != nil {
		return VerdictDrop
	}
	n.mu.Lock()
	port, ok := n.bindings[ft]
	if !ok {
		port = n.nextPort
		n.nextPort++
		if n.nextPort < 20000 { // wrapped
			n.nextPort = 20000
		}
		n.bindings[ft] = port
	}
	n.mu.Unlock()

	// Rewrite source IP and port in place, patching the checksum
	// incrementally per RFC 1624: HC' = ~(~HC + ~m + m').
	ip := m.Data[14:]
	ihl := int(ip[0]&0x0f) * 4
	patchAddr(ip, 12, n.external)
	l4 := ip[ihl:]
	binary.BigEndian.PutUint16(l4[0:2], port)
	return VerdictForward
}

// patchAddr overwrites 4 bytes at off in the IPv4 header and fixes
// the header checksum incrementally.
func patchAddr(ip []byte, off int, addr [4]byte) {
	check := binary.BigEndian.Uint16(ip[10:12])
	for i := 0; i < 4; i += 2 {
		oldW := binary.BigEndian.Uint16(ip[off+i : off+i+2])
		newW := binary.BigEndian.Uint16(addr[i : i+2])
		check = checksumAdjust(check, oldW, newW)
	}
	copy(ip[off:off+4], addr[:])
	binary.BigEndian.PutUint16(ip[10:12], check)
}

// checksumAdjust applies RFC 1624 equation 3 for a 16-bit field
// change.
func checksumAdjust(check, oldW, newW uint16) uint16 {
	sum := uint32(^check) + uint32(^oldW) + uint32(newW)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Cost implements Handler: header rewrite plus a flow-table lookup.
func (n *NAT) Cost() CostModel {
	return CostModel{
		CyclesPerPacket: 150,
		CyclesPerByte:   0,
		StateBytes:      int64(n.Bindings())*64 + 16384,
	}
}
