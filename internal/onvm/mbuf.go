package onvm

import (
	"errors"
	"fmt"
)

// MbufSize is the backing-buffer size of every packet buffer: one
// DPDK-style 2 KiB slot, enough for a 1518 B frame plus headroom for
// encapsulation (VXLAN adds 50 B).
const MbufSize = 2048

// Headroom is the bytes reserved before the frame for prepending
// headers without copying, like rte_pktmbuf headroom.
const Headroom = 128

// Mbuf is one packet buffer. Data is the live frame; the full backing
// array (with headroom) is retained so Prepend can grow the frame in
// place.
type Mbuf struct {
	store [MbufSize]byte
	// Data is the current frame contents (a slice of store).
	Data []byte
	// Port is the ingress port index.
	Port uint16
	// FlowHash caches a 5-tuple hash for load balancing.
	FlowHash uint32
	// Arrival is the packet's arrival timestamp in seconds of
	// simulation time.
	Arrival float64
	// ChainPos tracks which NF in the chain handles the packet next.
	ChainPos int

	pool *Mempool
}

// Reset prepares the mbuf for a new frame of n bytes and returns the
// writable slice. It fails if n exceeds the usable capacity.
func (m *Mbuf) Reset(n int) ([]byte, error) {
	if n < 0 || n > MbufSize-Headroom {
		return nil, fmt.Errorf("onvm: frame of %d bytes exceeds mbuf capacity %d", n, MbufSize-Headroom)
	}
	m.Data = m.store[Headroom : Headroom+n]
	m.Port = 0
	m.FlowHash = 0
	m.Arrival = 0
	m.ChainPos = 0
	return m.Data, nil
}

// Prepend grows the frame by n bytes at the front (into the headroom)
// and returns the new prefix for writing, or an error if the headroom
// is exhausted. Used by encapsulating NFs (VXLAN).
func (m *Mbuf) Prepend(n int) ([]byte, error) {
	if n <= 0 {
		return nil, errors.New("onvm: prepend needs positive size")
	}
	// Compute current offset of Data within store.
	off := cap(m.store[:]) - cap(m.Data)
	if off < n {
		return nil, fmt.Errorf("onvm: headroom exhausted (%d < %d)", off, n)
	}
	m.Data = m.store[off-n : off+len(m.Data)]
	return m.Data[:n], nil
}

// Adj trims n bytes from the front of the frame (decapsulation).
func (m *Mbuf) Adj(n int) error {
	if n < 0 || n > len(m.Data) {
		return fmt.Errorf("onvm: cannot trim %d of %d bytes", n, len(m.Data))
	}
	m.Data = m.Data[n:]
	return nil
}

// Free returns the mbuf to its pool. Using an mbuf after Free is a
// bug, as it is in DPDK.
func (m *Mbuf) Free() {
	if m.pool != nil {
		m.pool.put(m)
	}
}

// Mempool is a bounded pool of mbufs, the stand-in for a hugepage
// rte_mempool. Exhaustion is a packet drop at RX, exactly as on the
// real platform when the DMA buffer runs out of descriptors.
// The pool is goroutine-safe.
type Mempool struct {
	free chan *Mbuf
	size int
}

// NewMempool builds a pool holding n mbufs.
func NewMempool(n int) (*Mempool, error) {
	if n <= 0 {
		return nil, errors.New("onvm: mempool needs at least one mbuf")
	}
	p := &Mempool{free: make(chan *Mbuf, n), size: n}
	for i := 0; i < n; i++ {
		m := &Mbuf{pool: p}
		m.Data = m.store[Headroom:Headroom]
		p.free <- m
	}
	return p, nil
}

// MustNewMempool is NewMempool that panics on error.
func MustNewMempool(n int) *Mempool {
	p, err := NewMempool(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Get takes an mbuf from the pool, or nil if the pool is exhausted
// (callers count this as an RX drop).
func (p *Mempool) Get() *Mbuf {
	select {
	case m := <-p.free:
		return m
	default:
		return nil
	}
}

// put returns an mbuf. Internal: reached via Mbuf.Free.
func (p *Mempool) put(m *Mbuf) {
	select {
	case p.free <- m:
	default:
		// Double-free or foreign mbuf; drop it rather than block.
	}
}

// Available reports how many mbufs are currently free.
func (p *Mempool) Available() int { return len(p.free) }

// Size reports the pool's total capacity.
func (p *Mempool) Size() int { return p.size }
