package onvm

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, 1, 3, 100} {
		if _, err := NewRing(c); err == nil {
			t.Errorf("capacity %d accepted", c)
		}
		if _, err := NewMPMCRing(c); err == nil {
			t.Errorf("MPMC capacity %d accepted", c)
		}
	}
	if _, err := NewRing(8); err != nil {
		t.Errorf("capacity 8 rejected: %v", err)
	}
}

func TestRingFIFOSingleThread(t *testing.T) {
	r := MustNewRing(8)
	ms := makeMbufs(5)
	for _, m := range ms {
		if !r.Enqueue(m) {
			t.Fatal("enqueue failed on non-full ring")
		}
	}
	if r.Len() != 5 {
		t.Errorf("len = %d, want 5", r.Len())
	}
	for i, want := range ms {
		got := r.Dequeue()
		if got != want {
			t.Fatalf("dequeue %d: wrong mbuf", i)
		}
	}
	if r.Dequeue() != nil {
		t.Error("dequeue from empty ring returned a packet")
	}
}

func TestRingFullRejects(t *testing.T) {
	r := MustNewRing(4)
	ms := makeMbufs(5)
	for i := 0; i < 4; i++ {
		if !r.Enqueue(ms[i]) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue(ms[4]) {
		t.Error("enqueue into full ring succeeded")
	}
	if r.Cap() != 4 {
		t.Errorf("cap = %d", r.Cap())
	}
}

func TestRingBurstOperations(t *testing.T) {
	r := MustNewRing(8)
	ms := makeMbufs(10)
	n := r.EnqueueBurst(ms)
	if n != 8 {
		t.Fatalf("enqueue burst = %d, want 8 (capacity)", n)
	}
	dst := make([]*Mbuf, 3)
	if got := r.DequeueBurst(dst); got != 3 {
		t.Fatalf("dequeue burst = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if dst[i] != ms[i] {
			t.Fatalf("burst order violated at %d", i)
		}
	}
	if got := r.DequeueBurst(make([]*Mbuf, 16)); got != 5 {
		t.Errorf("drain burst = %d, want 5", got)
	}
	if got := r.EnqueueBurst(nil); got != 0 {
		t.Errorf("empty burst = %d", got)
	}
}

// Property: an SPSC ring passed a random op sequence behaves exactly
// like an unbounded FIFO truncated at capacity.
func TestRingModelEquivalence(t *testing.T) {
	f := func(ops []bool) bool {
		r := MustNewRing(16)
		var model []*Mbuf
		pool := makeMbufs(len(ops) + 1)
		next := 0
		for _, isEnq := range ops {
			if isEnq {
				m := pool[next]
				next++
				ok := r.Enqueue(m)
				modelOK := len(model) < 16
				if ok != modelOK {
					return false
				}
				if ok {
					model = append(model, m)
				}
			} else {
				got := r.Dequeue()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// SPSC ring under a real producer/consumer pair: every packet arrives
// exactly once, in order.
func TestRingConcurrentSPSC(t *testing.T) {
	r := MustNewRing(64)
	const total = 20000
	ms := makeMbufs(total)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if r.Enqueue(ms[i]) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	seen := 0
	for seen < total {
		m := r.Dequeue()
		if m == nil {
			runtime.Gosched()
			continue
		}
		if m != ms[seen] {
			t.Fatalf("out of order at %d", seen)
		}
		seen++
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Errorf("ring not empty: %d", r.Len())
	}
}

// MPMC ring under multiple producers and consumers: conservation (no
// loss, no duplication).
func TestMPMCConservation(t *testing.T) {
	r := MustNewMPMCRing(32)
	const producers, perProducer = 4, 2000
	const total = producers * perProducer
	ms := makeMbufs(total)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perProducer; {
				if r.Enqueue(ms[base+i]) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}(p * perProducer)
	}
	var mu sync.Mutex
	received := make(map[*Mbuf]int, total)
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				m := r.Dequeue()
				if m == nil {
					select {
					case <-done:
						// Final drain after producers finish.
						for {
							m := r.Dequeue()
							if m == nil {
								return
							}
							mu.Lock()
							received[m]++
							mu.Unlock()
						}
					default:
						runtime.Gosched()
						continue
					}
				}
				mu.Lock()
				received[m]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	if len(received) != total {
		t.Fatalf("received %d distinct packets, want %d", len(received), total)
	}
	for m, n := range received {
		if n != 1 {
			t.Fatalf("packet %p received %d times", m, n)
		}
	}
}

func TestMPMCFullAndEmpty(t *testing.T) {
	r := MustNewMPMCRing(4)
	ms := makeMbufs(5)
	for i := 0; i < 4; i++ {
		if !r.Enqueue(ms[i]) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue(ms[4]) {
		t.Error("full MPMC accepted a packet")
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Errorf("len/cap = %d/%d", r.Len(), r.Cap())
	}
	dst := make([]*Mbuf, 8)
	if n := r.DequeueBurst(dst); n != 4 {
		t.Errorf("burst = %d, want 4", n)
	}
	if r.Dequeue() != nil {
		t.Error("empty MPMC returned a packet")
	}
}

func makeMbufs(n int) []*Mbuf {
	out := make([]*Mbuf, n)
	for i := range out {
		out[i] = &Mbuf{}
	}
	return out
}
