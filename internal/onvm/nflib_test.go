package onvm

import (
	"bytes"
	"testing"

	"greennfv/internal/traffic"
)

// frameMbuf builds a pooled mbuf holding a synthesized frame.
func frameMbuf(t *testing.T, p *Mempool, ft traffic.FiveTuple, size int) *Mbuf {
	t.Helper()
	frame, err := traffic.BuildFrame(nil, ft, size)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Get()
	if m == nil {
		t.Fatal("pool exhausted")
	}
	buf, err := m.Reset(len(frame))
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, frame)
	return m
}

func tuple(srcLast byte, dstPort uint16, proto traffic.Proto) traffic.FiveTuple {
	return traffic.FiveTuple{
		SrcIP: [4]byte{10, 0, 0, srcLast}, DstIP: [4]byte{10, 1, 0, 1},
		SrcPort: 4000, DstPort: dstPort, Proto: proto,
	}
}

func TestFirewallRules(t *testing.T) {
	p := MustNewMempool(16)
	fw := NewFirewall([]FirewallRule{
		{DstPortLo: 22, DstPortHi: 22, Action: FirewallDeny},
		{SrcPrefix: [4]byte{10, 0, 0, 0}, SrcPrefixLen: 24, Action: FirewallAccept},
	}, false)

	ssh := frameMbuf(t, p, tuple(1, 22, traffic.ProtoTCP), 64)
	if fw.Handle(ssh) != VerdictDrop {
		t.Error("SSH packet not denied")
	}
	ssh.Free()

	inside := frameMbuf(t, p, tuple(2, 80, traffic.ProtoTCP), 64)
	if fw.Handle(inside) != VerdictForward {
		t.Error("allowed subnet denied")
	}
	inside.Free()

	// Source outside 10.0.0.0/24 hits the default (deny).
	outside := frameMbuf(t, p, traffic.FiveTuple{
		SrcIP: [4]byte{192, 168, 0, 1}, DstIP: [4]byte{10, 1, 0, 1},
		SrcPort: 4000, DstPort: 80, Proto: traffic.ProtoTCP,
	}, 64)
	if fw.Handle(outside) != VerdictDrop {
		t.Error("default-deny not applied")
	}
	outside.Free()

	if fw.Denied() != 2 {
		t.Errorf("denied = %d, want 2", fw.Denied())
	}
	if fw.Cost().CyclesPerPacket <= 0 {
		t.Error("zero cost model")
	}

	// Malformed (non-IPv4) frames are dropped.
	junk := p.Get()
	_, _ = junk.Reset(64)
	if fw.Handle(junk) != VerdictDrop {
		t.Error("junk frame forwarded")
	}
	junk.Free()
}

func TestFirewallDefaultAccept(t *testing.T) {
	p := MustNewMempool(4)
	fw := NewFirewall(nil, true)
	m := frameMbuf(t, p, tuple(1, 9999, traffic.ProtoUDP), 64)
	if fw.Handle(m) != VerdictForward {
		t.Error("default-accept dropped")
	}
	m.Free()
}

func TestNATRewritesAndChecksums(t *testing.T) {
	p := MustNewMempool(8)
	nat := NewNAT([4]byte{203, 0, 113, 7})
	ft := tuple(5, 80, traffic.ProtoUDP)
	m := frameMbuf(t, p, ft, 128)
	if nat.Handle(m) != VerdictForward {
		t.Fatal("NAT dropped a valid packet")
	}
	got, err := traffic.ParseFrame(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != [4]byte{203, 0, 113, 7} {
		t.Errorf("src IP = %v, want external", got.SrcIP)
	}
	if got.SrcPort < 20000 {
		t.Errorf("translated port = %d, want >= 20000", got.SrcPort)
	}
	if !traffic.VerifyIPv4Checksum(m.Data) {
		t.Error("incremental checksum update broke the header")
	}
	firstPort := got.SrcPort
	m.Free()

	// Same flow gets the same binding; a different flow gets a new one.
	m2 := frameMbuf(t, p, ft, 128)
	_ = nat.Handle(m2)
	got2, _ := traffic.ParseFrame(m2.Data)
	if got2.SrcPort != firstPort {
		t.Errorf("binding not stable: %d vs %d", got2.SrcPort, firstPort)
	}
	m2.Free()

	m3 := frameMbuf(t, p, tuple(6, 80, traffic.ProtoUDP), 128)
	_ = nat.Handle(m3)
	got3, _ := traffic.ParseFrame(m3.Data)
	if got3.SrcPort == firstPort {
		t.Error("distinct flows share a binding")
	}
	m3.Free()
	if nat.Bindings() != 2 {
		t.Errorf("bindings = %d, want 2", nat.Bindings())
	}
}

func TestRouterLPMAndTTL(t *testing.T) {
	p := MustNewMempool(8)
	r, err := NewRouter([]Route{
		{Prefix: [4]byte{10, 1, 0, 0}, Bits: 16, Port: 1},
		{Prefix: [4]byte{10, 1, 0, 0}, Bits: 24, Port: 2}, // more specific wins
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if port, ok := r.Lookup([4]byte{10, 1, 0, 77}); !ok || port != 2 {
		t.Errorf("LPM = %d/%v, want 2 (longest prefix)", port, ok)
	}
	if port, ok := r.Lookup([4]byte{10, 1, 5, 1}); !ok || port != 1 {
		t.Errorf("LPM = %d/%v, want 1", port, ok)
	}
	if port, ok := r.Lookup([4]byte{8, 8, 8, 8}); !ok || port != 9 {
		t.Errorf("default = %d/%v, want 9", port, ok)
	}

	m := frameMbuf(t, p, tuple(1, 80, traffic.ProtoUDP), 64)
	ttlBefore := m.Data[14+8]
	if r.Handle(m) != VerdictForward {
		t.Fatal("router dropped a routable packet")
	}
	if m.Data[14+8] != ttlBefore-1 {
		t.Error("TTL not decremented")
	}
	if !traffic.VerifyIPv4Checksum(m.Data) {
		t.Error("TTL checksum patch broke the header")
	}
	if m.Port != 2 {
		t.Errorf("egress port = %d, want 2", m.Port)
	}
	m.Free()

	// TTL 1 expires.
	m2 := frameMbuf(t, p, tuple(1, 80, traffic.ProtoUDP), 64)
	m2.Data[14+8] = 1
	if r.Handle(m2) != VerdictDrop {
		t.Error("expired TTL forwarded")
	}
	if r.TTLExpired() != 1 {
		t.Errorf("ttlExpired = %d", r.TTLExpired())
	}
	m2.Free()

	// No default: unroutable drops.
	r2, _ := NewRouter([]Route{{Prefix: [4]byte{172, 16, 0, 0}, Bits: 12, Port: 1}}, -1)
	m3 := frameMbuf(t, p, tuple(1, 80, traffic.ProtoUDP), 64)
	if r2.Handle(m3) != VerdictDrop {
		t.Error("unroutable packet forwarded without default")
	}
	m3.Free()

	if _, err := NewRouter([]Route{{Bits: 40}}, -1); err == nil {
		t.Error("bad prefix length accepted")
	}
	if _, err := NewRouter(nil, 1<<20); err == nil {
		t.Error("bad default port accepted")
	}
}

func TestIDSSignatures(t *testing.T) {
	p := MustNewMempool(8)
	ids, err := NewIDS([][]byte{[]byte("EVIL"), []byte("attack")}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Payload with a signature → drop in IPS mode.
	m := frameMbuf(t, p, tuple(1, 5000, traffic.ProtoUDP), 256)
	payload := l4Payload(m.Data)
	copy(payload[10:], []byte("xxEVILxx"))
	if ids.Handle(m) != VerdictDrop {
		t.Error("signature not caught")
	}
	if ids.Alerts() != 1 {
		t.Errorf("alerts = %d", ids.Alerts())
	}
	m.Free()

	// Clean payload forwards.
	m2 := frameMbuf(t, p, tuple(1, 5000, traffic.ProtoUDP), 256)
	if ids.Handle(m2) != VerdictForward {
		t.Error("clean packet dropped")
	}
	m2.Free()

	// Passive mode forwards but alerts.
	passive, _ := NewIDS([][]byte{[]byte("EVIL")}, false)
	m3 := frameMbuf(t, p, tuple(1, 5000, traffic.ProtoUDP), 256)
	copy(l4Payload(m3.Data), []byte("EVIL"))
	if passive.Handle(m3) != VerdictForward {
		t.Error("passive IDS dropped")
	}
	if passive.Alerts() != 1 {
		t.Error("passive IDS did not alert")
	}
	m3.Free()

	if _, err := NewIDS(nil, true); err == nil {
		t.Error("empty signature set accepted")
	}
	if _, err := NewIDS([][]byte{{}}, true); err == nil {
		t.Error("empty signature accepted")
	}
}

func TestAhoCorasickMatching(t *testing.T) {
	ac := newAhoCorasick([][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")})
	cases := []struct {
		data string
		want bool
	}{
		{"ushers", true}, // matches "she" and "hers" via failure links
		{"hi", false},
		{"this", true},
		{"", false},
		{"xxhexx", true},
	}
	for _, c := range cases {
		if got := ac.matchesAny([]byte(c.data)); got != c.want {
			t.Errorf("matchesAny(%q) = %v, want %v", c.data, got, c.want)
		}
	}
}

func TestCryptoNFRoundTrip(t *testing.T) {
	p := MustNewMempool(8)
	key := bytes.Repeat([]byte{7}, 16)
	c, err := NewCryptoNF(key)
	if err != nil {
		t.Fatal(err)
	}
	m := frameMbuf(t, p, tuple(1, 5000, traffic.ProtoUDP), 512)
	orig := append([]byte(nil), l4Payload(m.Data)...)
	if c.Handle(m) != VerdictForward {
		t.Fatal("crypto dropped")
	}
	enc := l4Payload(m.Data)
	if bytes.Equal(orig, enc) {
		t.Error("payload unchanged after encryption")
	}
	// Headers untouched.
	if !traffic.VerifyIPv4Checksum(m.Data) {
		t.Error("crypto damaged the IP header")
	}
	if c.Processed() != 1 {
		t.Errorf("processed = %d", c.Processed())
	}
	m.Free()

	if _, err := NewCryptoNF([]byte("short")); err == nil {
		t.Error("bad key accepted")
	}
	// Per-byte cost dominates for crypto.
	if c.Cost().CyclesPerByte <= 0 {
		t.Error("crypto must have per-byte cost")
	}
}

func TestVXLANEncapDecapRoundTrip(t *testing.T) {
	p := MustNewMempool(8)
	enc, err := NewVXLANTunnel(42, false)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewVXLANTunnel(42, true)

	m := frameMbuf(t, p, tuple(1, 80, traffic.ProtoUDP), 128)
	orig := append([]byte(nil), m.Data...)
	if enc.Handle(m) != VerdictForward {
		t.Fatal("encap failed")
	}
	if len(m.Data) != 128+8 {
		t.Fatalf("encap len = %d, want 136", len(m.Data))
	}
	if dec.Handle(m) != VerdictForward {
		t.Fatal("decap failed")
	}
	if !bytes.Equal(m.Data, orig) {
		t.Error("encap/decap round trip corrupted the frame")
	}
	m.Free()

	// VNI mismatch drops.
	decWrong, _ := NewVXLANTunnel(43, true)
	m2 := frameMbuf(t, p, tuple(1, 80, traffic.ProtoUDP), 128)
	_ = enc.Handle(m2)
	if decWrong.Handle(m2) != VerdictDrop {
		t.Error("wrong VNI accepted")
	}
	if decWrong.Errors() != 1 {
		t.Errorf("errors = %d", decWrong.Errors())
	}
	m2.Free()

	if _, err := NewVXLANTunnel(1<<24, false); err == nil {
		t.Error("oversized VNI accepted")
	}
}

func TestMonitorCountsFlows(t *testing.T) {
	p := MustNewMempool(16)
	mo := NewMonitor()
	for i := 0; i < 3; i++ {
		m := frameMbuf(t, p, tuple(1, 80, traffic.ProtoUDP), 64)
		m.Arrival = float64(i)
		if mo.Handle(m) != VerdictForward {
			t.Fatal("monitor dropped")
		}
		m.Free()
	}
	m := frameMbuf(t, p, tuple(2, 80, traffic.ProtoUDP), 128)
	_ = mo.Handle(m)
	m.Free()

	pk, by := mo.Totals()
	if pk != 4 || by != 3*64+128 {
		t.Errorf("totals = %d pkts %d bytes", pk, by)
	}
	if mo.FlowCount() != 2 {
		t.Errorf("flows = %d", mo.FlowCount())
	}
	fc, ok := mo.Flow(tuple(1, 80, traffic.ProtoUDP))
	if !ok || fc.Packets != 3 {
		t.Errorf("flow counter = %+v ok=%v", fc, ok)
	}
	rates := mo.Rates()
	if len(rates) != 2 || rates[0] < rates[1] {
		t.Errorf("rates not sorted descending: %v", rates)
	}
}

func TestLoadBalancerConsistency(t *testing.T) {
	p := MustNewMempool(64)
	lb, err := NewLoadBalancer(4)
	if err != nil {
		t.Fatal(err)
	}
	// Same flow always lands on the same backend.
	var first uint16
	for i := 0; i < 10; i++ {
		m := frameMbuf(t, p, tuple(9, 80, traffic.ProtoUDP), 64)
		if lb.Handle(m) != VerdictForward {
			t.Fatal("LB dropped")
		}
		if i == 0 {
			first = m.Port
		} else if m.Port != first {
			t.Fatal("flow moved between backends")
		}
		m.Free()
	}
	// Many flows spread across backends.
	for i := 0; i < 40; i++ {
		m := frameMbuf(t, p, tuple(byte(i), uint16(80+i), traffic.ProtoUDP), 64)
		_ = lb.Handle(m)
		m.Free()
	}
	counts := lb.BackendCounts()
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Errorf("poor spread: %v", counts)
	}
	if _, err := NewLoadBalancer(0); err == nil {
		t.Error("zero backends accepted")
	}
}

func TestRateLimiterPolicing(t *testing.T) {
	p := MustNewMempool(64)
	rl, err := NewRateLimiter(10, 2) // 10 pps, burst 2
	if err != nil {
		t.Fatal(err)
	}
	// Burst of 3 at t=0: first 2 pass, third drops.
	verdicts := make([]Verdict, 3)
	for i := range verdicts {
		m := frameMbuf(t, p, tuple(1, 80, traffic.ProtoUDP), 64)
		m.Arrival = 0
		verdicts[i] = rl.Handle(m)
		m.Free()
	}
	if verdicts[0] != VerdictForward || verdicts[1] != VerdictForward || verdicts[2] != VerdictDrop {
		t.Errorf("burst verdicts = %v", verdicts)
	}
	// After a second, 10 tokens refill (capped at burst 2).
	m := frameMbuf(t, p, tuple(1, 80, traffic.ProtoUDP), 64)
	m.Arrival = 1.0
	if rl.Handle(m) != VerdictForward {
		t.Error("refilled bucket still dropping")
	}
	m.Free()
	if rl.Drops() != 1 {
		t.Errorf("drops = %d", rl.Drops())
	}
	if _, err := NewRateLimiter(0, 1); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestDPIClassification(t *testing.T) {
	p := MustNewMempool(16)
	d := NewDPI()
	cases := []struct {
		port  uint16
		class string
	}{
		{53, "dns"}, {443, "tls"}, {80, "http"}, {9999, "other"},
	}
	for _, c := range cases {
		m := frameMbuf(t, p, tuple(1, c.port, traffic.ProtoUDP), 128)
		if d.Handle(m) != VerdictForward {
			t.Fatal("DPI dropped")
		}
		m.Free()
	}
	// Payload heuristic: HTTP GET on a non-standard port.
	m := frameMbuf(t, p, tuple(1, 8080, traffic.ProtoTCP), 256)
	copy(l4Payload(m.Data), []byte("GET /index.html"))
	_ = d.Handle(m)
	m.Free()

	counts := d.Counts()
	if counts["dns"] != 1 || counts["tls"] != 1 || counts["http"] != 2 || counts["other"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

// All library NFs must declare positive per-packet cost so the
// performance model never divides by zero.
func TestAllCostModelsPositive(t *testing.T) {
	lb, _ := NewLoadBalancer(2)
	rl, _ := NewRateLimiter(1000, 10)
	ids, _ := NewIDS([][]byte{[]byte("x")}, false)
	c, _ := NewCryptoNF(bytes.Repeat([]byte{1}, 16))
	vx, _ := NewVXLANTunnel(1, false)
	rt, _ := NewRouter(nil, 0)
	handlers := []Handler{
		NewFirewall(nil, true), NewNAT([4]byte{1, 2, 3, 4}), rt,
		ids, c, vx, NewMonitor(), lb, rl, NewDPI(),
	}
	for _, h := range handlers {
		cm := h.Cost()
		if cm.CyclesPerPacket <= 0 {
			t.Errorf("%s: non-positive per-packet cycles", h.Name())
		}
		if cm.StateBytes <= 0 {
			t.Errorf("%s: non-positive state size", h.Name())
		}
		if h.Name() == "" {
			t.Error("unnamed handler")
		}
	}
}
