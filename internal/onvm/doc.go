// Package onvm is the packet-processing substrate GreenNFV runs on,
// a software reproduction of the OpenNetVM platform the paper builds
// upon: fixed-size packet buffers (mbufs) drawn from a bounded
// mempool, lock-free circular queues between pipeline stages, network
// functions with an RX and a TX ring each, a manager that wires
// service chains and moves packets with a mix of polling and
// callback-style wakeups, and a library of realistic NFs (firewall,
// NAT, router, IDS, crypto, …).
//
// # Paper mapping
//
// The ONVM platform of §4.4 and the poll/callback packet-movement
// mix whose energy cost the Figure 9 platform variants compare; the
// NF library gives the service chains of Figures 1–4 concrete
// packet-level behaviour in the nfvsim harness.
//
// # Concurrency and determinism
//
// Ring is a bounded single-producer/single-consumer lock-free queue
// (atomic head/tail): exactly one goroutine may enqueue and one
// dequeue per ring, the standard DPDK/ONVM discipline. The mempool
// is goroutine-safe; mbufs themselves belong to whichever stage
// holds them. NFs and the manager are single-goroutine-per-NF. With
// a seeded traffic source a manager run is deterministic; rings
// shared across OS threads order only per the SPSC contract.
package onvm
