package onvm

import (
	"bytes"
	"testing"
)

func TestMempoolLifecycle(t *testing.T) {
	p := MustNewMempool(4)
	if p.Size() != 4 || p.Available() != 4 {
		t.Fatalf("size/avail = %d/%d", p.Size(), p.Available())
	}
	ms := make([]*Mbuf, 0, 4)
	for i := 0; i < 4; i++ {
		m := p.Get()
		if m == nil {
			t.Fatalf("Get %d returned nil with %d available", i, p.Available())
		}
		ms = append(ms, m)
	}
	if p.Get() != nil {
		t.Error("exhausted pool returned an mbuf")
	}
	for _, m := range ms {
		m.Free()
	}
	if p.Available() != 4 {
		t.Errorf("available after free = %d, want 4", p.Available())
	}
}

func TestMempoolDoubleFreeHarmless(t *testing.T) {
	p := MustNewMempool(2)
	m := p.Get()
	m.Free()
	m.Free() // double free must not corrupt the pool
	if p.Available() > 2 {
		t.Errorf("double free inflated pool to %d", p.Available())
	}
}

func TestMempoolValidation(t *testing.T) {
	if _, err := NewMempool(0); err == nil {
		t.Error("zero-size pool accepted")
	}
}

func TestMbufResetAndCapacity(t *testing.T) {
	p := MustNewMempool(1)
	m := p.Get()
	buf, err := m.Reset(1518)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 1518 {
		t.Errorf("reset len = %d", len(buf))
	}
	if _, err := m.Reset(MbufSize); err == nil {
		t.Error("oversized reset accepted")
	}
	if _, err := m.Reset(-1); err == nil {
		t.Error("negative reset accepted")
	}
}

func TestMbufPrependAdj(t *testing.T) {
	p := MustNewMempool(1)
	m := p.Get()
	buf, _ := m.Reset(100)
	for i := range buf {
		buf[i] = byte(i)
	}
	hdr, err := m.Prepend(8)
	if err != nil {
		t.Fatal(err)
	}
	copy(hdr, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if len(m.Data) != 108 {
		t.Fatalf("after prepend len = %d, want 108", len(m.Data))
	}
	if !bytes.Equal(m.Data[:8], []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Error("prepended header corrupted")
	}
	if m.Data[8] != 0 || m.Data[9] != 1 {
		t.Error("original payload shifted")
	}
	if err := m.Adj(8); err != nil {
		t.Fatal(err)
	}
	if len(m.Data) != 100 || m.Data[0] != 0 {
		t.Error("adj did not restore original frame")
	}
	if err := m.Adj(1000); err == nil {
		t.Error("oversized adj accepted")
	}
	if _, err := m.Prepend(0); err == nil {
		t.Error("zero prepend accepted")
	}
}

func TestMbufPrependExhaustsHeadroom(t *testing.T) {
	p := MustNewMempool(1)
	m := p.Get()
	_, _ = m.Reset(64)
	if _, err := m.Prepend(Headroom); err != nil {
		t.Fatalf("full-headroom prepend failed: %v", err)
	}
	if _, err := m.Prepend(1); err == nil {
		t.Error("prepend past headroom accepted")
	}
}

func TestMbufResetClearsMetadata(t *testing.T) {
	p := MustNewMempool(1)
	m := p.Get()
	m.Port, m.FlowHash, m.Arrival, m.ChainPos = 3, 7, 1.5, 2
	_, _ = m.Reset(64)
	if m.Port != 0 || m.FlowHash != 0 || m.Arrival != 0 || m.ChainPos != 0 {
		t.Error("reset did not clear metadata")
	}
}
