package onvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Route is one forwarding entry: destination prefix → egress port.
type Route struct {
	Prefix [4]byte
	Bits   int
	Port   uint16
}

// Router is a longest-prefix-match IPv4 forwarder with TTL handling,
// modelled after the simple L3 NFs shipped with OpenNetVM. Routes are
// immutable after construction, like a compiled FIB.
type Router struct {
	// routes sorted by descending prefix length for first-match LPM.
	routes      []Route
	defaultPort uint16
	hasDefault  bool
	ttlExpired  atomic.Uint64
}

// NewRouter compiles a routing table. Prefix lengths must be 0–32;
// a defaultPort < 0 means packets matching nothing are dropped.
func NewRouter(routes []Route, defaultPort int) (*Router, error) {
	cp := make([]Route, len(routes))
	copy(cp, routes)
	for i, r := range cp {
		if r.Bits < 0 || r.Bits > 32 {
			return nil, fmt.Errorf("onvm: route %d prefix length %d invalid", i, r.Bits)
		}
	}
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Bits > cp[j].Bits })
	rt := &Router{routes: cp}
	if defaultPort >= 0 {
		if defaultPort > 0xffff {
			return nil, errors.New("onvm: default port out of range")
		}
		rt.defaultPort = uint16(defaultPort)
		rt.hasDefault = true
	}
	return rt, nil
}

// Name implements Handler.
func (r *Router) Name() string { return "router" }

// TTLExpired reports packets dropped for TTL exhaustion.
func (r *Router) TTLExpired() uint64 { return r.ttlExpired.Load() }

// Lookup performs longest-prefix match on a destination address,
// returning the egress port and whether any route matched.
func (r *Router) Lookup(dst [4]byte) (uint16, bool) {
	a := binary.BigEndian.Uint32(dst[:])
	for i := range r.routes {
		rt := &r.routes[i]
		if rt.Bits == 0 {
			return rt.Port, true
		}
		shift := uint(32 - rt.Bits)
		p := binary.BigEndian.Uint32(rt.Prefix[:])
		if a>>shift == p>>shift {
			return rt.Port, true
		}
	}
	if r.hasDefault {
		return r.defaultPort, true
	}
	return 0, false
}

// Handle implements Handler: LPM, TTL decrement with incremental
// checksum fix, egress port stamped into the mbuf.
func (r *Router) Handle(m *Mbuf) Verdict {
	if len(m.Data) < 34 {
		return VerdictDrop
	}
	ip := m.Data[14:]
	if ip[0]>>4 != 4 {
		return VerdictDrop
	}
	if ip[8] <= 1 {
		r.ttlExpired.Add(1)
		return VerdictDrop
	}
	var dst [4]byte
	copy(dst[:], ip[16:20])
	port, ok := r.Lookup(dst)
	if !ok {
		return VerdictDrop
	}
	// Decrement TTL; checksum adjust for the 16-bit word containing
	// TTL (bytes 8-9).
	oldW := binary.BigEndian.Uint16(ip[8:10])
	ip[8]--
	newW := binary.BigEndian.Uint16(ip[8:10])
	check := binary.BigEndian.Uint16(ip[10:12])
	binary.BigEndian.PutUint16(ip[10:12], checksumAdjust(check, oldW, newW))
	m.Port = port
	return VerdictForward
}

// Cost implements Handler: LPM table walk, header-only.
func (r *Router) Cost() CostModel {
	return CostModel{
		CyclesPerPacket: 180 + 4*float64(len(r.routes)),
		CyclesPerByte:   0,
		StateBytes:      int64(len(r.routes))*16 + 32768,
	}
}
