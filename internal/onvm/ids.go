package onvm

import (
	"errors"
	"sync/atomic"
)

// IDS is a signature-based intrusion detection NF. It scans packet
// payloads for a compiled set of byte signatures with the
// Aho-Corasick automaton (one pass over the payload regardless of
// signature count), the same structure Snort-class systems build.
// This is the paper's example of a heavyweight, payload-touching NF;
// multiple IDS instances can share alert state.
type IDS struct {
	ac       *ahoCorasick
	sigCount int
	dropHits bool
	alerts   atomic.Uint64
}

// NewIDS compiles signatures into an IDS. If dropOnMatch is true,
// matching packets are dropped (inline IPS mode); otherwise they are
// forwarded and counted (passive IDS mode).
func NewIDS(signatures [][]byte, dropOnMatch bool) (*IDS, error) {
	if len(signatures) == 0 {
		return nil, errors.New("onvm: IDS needs at least one signature")
	}
	for _, s := range signatures {
		if len(s) == 0 {
			return nil, errors.New("onvm: empty IDS signature")
		}
	}
	return &IDS{ac: newAhoCorasick(signatures), sigCount: len(signatures), dropHits: dropOnMatch}, nil
}

// Name implements Handler.
func (d *IDS) Name() string { return "ids" }

// Alerts reports the number of signature hits so far.
func (d *IDS) Alerts() uint64 { return d.alerts.Load() }

// Handle implements Handler: scan the L4 payload.
func (d *IDS) Handle(m *Mbuf) Verdict {
	payload := l4Payload(m.Data)
	if payload == nil {
		return VerdictForward // nothing to scan
	}
	if d.ac.matchesAny(payload) {
		d.alerts.Add(1)
		if d.dropHits {
			return VerdictDrop
		}
	}
	return VerdictForward
}

// Cost implements Handler: per-byte automaton traversal dominates.
func (d *IDS) Cost() CostModel {
	return CostModel{
		CyclesPerPacket: 250,
		CyclesPerByte:   2.0,
		StateBytes:      int64(len(d.ac.nodes))*1088 + 65536,
	}
}

// l4Payload returns the application payload of an IPv4/UDP|TCP frame
// (nil when absent or malformed).
func l4Payload(frame []byte) []byte {
	if len(frame) < 34 {
		return nil
	}
	ip := frame[14:]
	if ip[0]>>4 != 4 {
		return nil
	}
	ihl := int(ip[0]&0x0f) * 4
	var l4len int
	switch ip[9] {
	case 17:
		l4len = 8
	case 6:
		if len(ip) < ihl+13 {
			return nil
		}
		l4len = int(ip[ihl+12]>>4) * 4
	default:
		return nil
	}
	start := 14 + ihl + l4len
	end := len(frame) - 4 // exclude FCS
	if start >= end {
		return nil
	}
	return frame[start:end]
}

// ahoCorasick is a byte-level Aho-Corasick automaton.
type ahoCorasick struct {
	nodes []acNode
}

type acNode struct {
	next     [256]int32 // goto function with failure links compiled in
	terminal bool
}

// newAhoCorasick builds the automaton with the classic BFS failure-
// link construction, then flattens failures into the goto table so
// matching is a single table walk per byte.
func newAhoCorasick(patterns [][]byte) *ahoCorasick {
	ac := &ahoCorasick{nodes: make([]acNode, 1, 64)}
	// Trie.
	trieNext := []map[byte]int32{{}}
	for _, p := range patterns {
		cur := int32(0)
		for _, b := range p {
			nxt, ok := trieNext[cur][b]
			if !ok {
				ac.nodes = append(ac.nodes, acNode{})
				trieNext = append(trieNext, map[byte]int32{})
				nxt = int32(len(ac.nodes) - 1)
				trieNext[cur][b] = nxt
			}
			cur = nxt
		}
		ac.nodes[cur].terminal = true
	}
	// BFS failure links, flattened.
	fail := make([]int32, len(ac.nodes))
	queue := make([]int32, 0, len(ac.nodes))
	for b := 0; b < 256; b++ {
		if nxt, ok := trieNext[0][byte(b)]; ok {
			ac.nodes[0].next[b] = nxt
			queue = append(queue, nxt)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if ac.nodes[fail[u]].terminal {
			ac.nodes[u].terminal = true
		}
		for b := 0; b < 256; b++ {
			if v, ok := trieNext[u][byte(b)]; ok {
				fail[v] = ac.nodes[fail[u]].next[b]
				ac.nodes[u].next[b] = v
				queue = append(queue, v)
			} else {
				ac.nodes[u].next[b] = ac.nodes[fail[u]].next[b]
			}
		}
	}
	return ac
}

// matchesAny reports whether any pattern occurs in data.
func (ac *ahoCorasick) matchesAny(data []byte) bool {
	state := int32(0)
	for _, b := range data {
		state = ac.nodes[state].next[b]
		if ac.nodes[state].terminal {
			return true
		}
	}
	return false
}
