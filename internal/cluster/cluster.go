package cluster

import (
	"errors"
	"fmt"

	"greennfv/internal/perfmodel"
	"greennfv/internal/placement"
	"greennfv/internal/pool"
)

// NodeSpec is one host in the cluster: a name and a full analytic
// model (core count, LLC geometry, power profile — heterogeneity
// lives here).
type NodeSpec struct {
	Name  string
	Model perfmodel.Config
}

// LinkModel is the inter-node fabric: every cross-node service-chain
// hop pays its latency, shares its per-node-pair bandwidth, and
// charges its transfer energy.
type LinkModel struct {
	// BandwidthBps caps each node pair's aggregate cross traffic.
	BandwidthBps float64
	// LatencyNs is the one-way hop latency (NIC + switch + wire).
	LatencyNs float64
	// WattsPerGbps is the transfer cost (NIC + switch port energy).
	WattsPerGbps float64
}

// Topology is the cluster: nodes plus the fabric between them.
type Topology struct {
	Nodes []NodeSpec
	Link  LinkModel
}

// Validate reports whether the topology is well formed. All node
// models must share WindowSeconds so node and link energy integrate
// over the same measurement window.
func (t *Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return errors.New("cluster: no nodes")
	}
	for i := range t.Nodes {
		if err := t.Nodes[i].Model.Validate(); err != nil {
			return fmt.Errorf("cluster: node %d (%s): %w", i, t.Nodes[i].Name, err)
		}
		if t.Nodes[i].Model.WindowSeconds != t.Nodes[0].Model.WindowSeconds {
			return fmt.Errorf("cluster: node %d window %v s != node 0 window %v s",
				i, t.Nodes[i].Model.WindowSeconds, t.Nodes[0].Model.WindowSeconds)
		}
	}
	if len(t.Nodes) > 1 {
		if t.Link.BandwidthBps <= 0 {
			return errors.New("cluster: link bandwidth must be positive")
		}
		if t.Link.LatencyNs < 0 || t.Link.WattsPerGbps < 0 {
			return errors.New("cluster: link latency/energy must be non-negative")
		}
	}
	return nil
}

// ChainLoad is one service chain plus its offered traffic.
type ChainLoad struct {
	Chain   perfmodel.ChainSpec
	Traffic perfmodel.Traffic
}

// Hop is inter-chain traffic: packets leaving chain From feed chain
// To. When the two chains sit on different nodes the hop crosses the
// fabric and pays the LinkModel costs; co-located hops are free (the
// packets stay in the shared LLC — the locality placement optimizes).
type Hop struct {
	From, To   int
	PPS        float64
	FrameBytes int
}

// Workload is the cluster's offered load: chains, the hop graph
// between them, and the end-to-end latency budget the SLA credits
// against.
type Workload struct {
	Chains []ChainLoad
	Hops   []Hop
	// LatencyBudgetNs: chains whose accumulated cross-node hop
	// latency exceeds it contribute nothing to SLA-credited
	// throughput. 0 disables the check.
	LatencyBudgetNs float64
}

// Validate reports whether the workload is well formed: named,
// uniquely-named chains, hop endpoints in range, and an acyclic hop
// graph (path latency would otherwise be unbounded).
func (w *Workload) Validate() error {
	if len(w.Chains) == 0 {
		return errors.New("cluster: no chains")
	}
	seen := map[string]bool{}
	for i := range w.Chains {
		name := w.Chains[i].Chain.Name
		if name == "" {
			return fmt.Errorf("cluster: chain %d unnamed", i)
		}
		if seen[name] {
			return fmt.Errorf("cluster: duplicate chain name %q", name)
		}
		seen[name] = true
		if len(w.Chains[i].Chain.NFs) == 0 {
			return fmt.Errorf("cluster: chain %q empty", name)
		}
	}
	for i, h := range w.Hops {
		if h.From < 0 || h.From >= len(w.Chains) || h.To < 0 || h.To >= len(w.Chains) || h.From == h.To {
			return fmt.Errorf("cluster: hop %d endpoints (%d→%d) out of range", i, h.From, h.To)
		}
		if h.PPS < 0 || h.FrameBytes <= 0 {
			return fmt.Errorf("cluster: hop %d load must be positive", i)
		}
	}
	// Cycle check: longest-path relaxation must settle within C
	// rounds on a DAG.
	depth := make([]int, len(w.Chains))
	for round := 0; ; round++ {
		changed := false
		for _, h := range w.Hops {
			if depth[h.From]+1 > depth[h.To] {
				depth[h.To] = depth[h.From] + 1
				changed = true
			}
		}
		if !changed {
			return nil
		}
		if round >= len(w.Chains) {
			return errors.New("cluster: hop graph has a cycle")
		}
	}
}

// PlacementProblem derives the offline placement instance for this
// workload on this topology: chain demands from default knob shares
// and state footprints, node capacities from each model's cores and
// CLOS-maskable LLC, affinities from the hop graph.
func (w *Workload) PlacementProblem(t *Topology) placement.Problem {
	p := placement.Problem{
		Chains: make([]placement.ChainDemand, len(w.Chains)),
		Nodes:  make([]placement.NodeCapacity, len(t.Nodes)),
	}
	for i := range w.Chains {
		c := &w.Chains[i]
		// LLC demand is a residency floor (a quarter of the state
		// working set, at least one way), not the full working set:
		// the knob policy trades the rest against miss rate, so the
		// packing only reserves the minimum that keeps a chain viable.
		llc := c.Chain.TotalStateBytes() / 4
		if llc < 1<<20 {
			llc = 1 << 20
		}
		p.Chains[i] = placement.ChainDemand{
			Name:     c.Chain.Name,
			Cores:    float64(len(c.Chain.NFs)), // default CPUShare is 1.0/NF
			LLCBytes: llc,
			FlowPPS:  c.Traffic.OfferedPPS,
		}
	}
	for i := range t.Nodes {
		p.Nodes[i] = placement.NodeCapacity{
			Cores:    float64(t.Nodes[i].Model.NumCores),
			LLCBytes: t.Nodes[i].Model.Cache.SharedBytes(),
		}
	}
	for _, h := range w.Hops {
		p.Affinities = append(p.Affinities, placement.Affinity{
			A:   w.Chains[h.From].Chain.Name,
			B:   w.Chains[h.To].Chain.Name,
			PPS: h.PPS,
		})
	}
	return p
}

// NodeResult is one host's aggregate over the window.
type NodeResult struct {
	// Chains hosted on this node.
	Chains int
	// BusyCores is Σ busy cores over the node's chains.
	BusyCores float64
	// Utilization is the node busy fraction in [0,1].
	Utilization float64
	// PowerWatts is the node's mean draw; EnergyJoules integrates it
	// over the window.
	PowerWatts   float64
	EnergyJoules float64
}

type pairAgg struct {
	a, b int
	gbps float64
}

// pairFactor is the delivery derate a cross hop between nodes na and
// nb pays: the pair's bandwidth cap over its offered traffic, 1 when
// the link keeps up.
func pairFactor(pairs []pairAgg, capGbps float64, na, nb int) float64 {
	if na > nb {
		na, nb = nb, na
	}
	for i := range pairs {
		if pairs[i].a == na && pairs[i].b == nb {
			if pairs[i].gbps > capGbps {
				return capGbps / pairs[i].gbps
			}
			return 1
		}
	}
	return 1
}

// Result is one cluster evaluation. The exported totals are what the
// SLA and the figures consume; unexported fields are zero-alloc
// scratch reused across EvaluateClusterInto calls.
type Result struct {
	// PerChain holds each chain's single-node evaluation (index
	// matches Workload.Chains). On a partial-failure return, entries
	// for chains that did evaluate are valid; the aggregates are not
	// computed.
	PerChain []perfmodel.Result
	// PerNode holds each host's aggregate (index matches
	// Topology.Nodes).
	PerNode []NodeResult
	// ThroughputGbps is delivered goodput after per-node-pair link
	// bandwidth derating propagates down the hop graph.
	ThroughputGbps float64
	// SLAGbps is the latency-credited part of ThroughputGbps: chains
	// whose cross-node path latency exceeds the budget deliver
	// nothing the SLA counts.
	SLAGbps float64
	// CrossGbps is total fabric traffic (post-cap).
	CrossGbps float64
	// NodeEnergyJ + LinkEnergyJ = EnergyJ: Σ node power × window plus
	// link transfer cost.
	NodeEnergyJ float64
	LinkEnergyJ float64
	EnergyJ     float64
	// MaxPathLatencyNs is the worst chain's accumulated cross-node
	// hop latency.
	MaxPathLatencyNs float64
	// Efficiency is SLA-credited Gbps per kilojoule.
	Efficiency float64
	// NodesUsed counts hosts with at least one chain.
	NodesUsed int

	// Scratch (capacity-reused, never shared between goroutines).
	factor  []float64
	latency []float64
	pairs   []pairAgg
	llcSum  []float64
	nodeCnt []int
	fwb     []float64
	knobBuf []perfmodel.NFKnobs
	knobEff [][]perfmodel.NFKnobs
	errs    []error
}

func growF(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growI(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}

// EvaluateCluster is EvaluateClusterInto with a fresh result.
func (t *Topology) EvaluateCluster(w *Workload, knobs [][]perfmodel.NFKnobs, assign []int, opt perfmodel.EvalOptions) (Result, error) {
	var res Result
	if err := t.EvaluateClusterInto(&res, w, knobs, assign, opt); err != nil {
		return Result{}, err
	}
	return res, nil
}

// EvaluateClusterInto evaluates the workload placed by assign
// (assign[c] = node index hosting chain c) under per-chain per-NF
// knobs, serially. Scratch inside res is capacity-reused, so a caller
// that evaluates in a loop (ClusterEnv, the figure drivers) performs
// no steady-state allocations. res must not be shared between
// goroutines.
//
// A node hosting exactly one chain reproduces the single-node
// perfmodel path bit-for-bit: the chain's knobs pass through
// untouched and the node totals are copied from the chain result, so
// a 1-node homogeneous cluster is byte-identical to internal/node.
// Co-located chains (k > 1) share the node: their LLC fractions are
// rescaled node-wide when oversubscribed (CAT partitioning across
// chains, the same rule EvaluateInto applies within one chain) and
// the node's utilization/power aggregate over all hosted chains'
// busy cores.
func (t *Topology) EvaluateClusterInto(res *Result, w *Workload, knobs [][]perfmodel.NFKnobs, assign []int, opt perfmodel.EvalOptions) error {
	return t.evaluateCluster(res, w, knobs, assign, opt, 1)
}

// EvaluateClusterParallelInto is EvaluateClusterInto with chains
// evaluated concurrently on up to workers goroutines (<= 0 means
// GOMAXPROCS). Unlike BatchEvaluate's stop-on-first-error contract,
// every chain is always attempted: on error, the lowest-index chain
// error is returned and PerChain entries for the chains that did
// evaluate remain valid (the partial results the cluster control
// plane needs to degrade per node instead of discarding the whole
// cluster view). Aggregation is serial either way, so the result is
// bit-identical to the serial path.
func (t *Topology) EvaluateClusterParallelInto(res *Result, w *Workload, knobs [][]perfmodel.NFKnobs, assign []int, opt perfmodel.EvalOptions, workers int) error {
	return t.evaluateCluster(res, w, knobs, assign, opt, workers)
}

func (t *Topology) evaluateCluster(res *Result, w *Workload, knobs [][]perfmodel.NFKnobs, assign []int, opt perfmodel.EvalOptions, workers int) error {
	nNodes := len(t.Nodes)
	nChains := len(w.Chains)
	if nNodes == 0 {
		return errors.New("cluster: no nodes")
	}
	if len(knobs) != nChains || len(assign) != nChains {
		return fmt.Errorf("cluster: %d knob sets / %d assignments for %d chains",
			len(knobs), len(assign), nChains)
	}
	for c, n := range assign {
		if n < 0 || n >= nNodes {
			return fmt.Errorf("cluster: chain %d assigned to node %d of %d", c, n, nNodes)
		}
		if len(knobs[c]) != len(w.Chains[c].Chain.NFs) {
			return fmt.Errorf("cluster: chain %d has %d knob sets for %d NFs",
				c, len(knobs[c]), len(w.Chains[c].Chain.NFs))
		}
	}

	// Grow scratch (capacity-reused in steady state).
	if cap(res.PerChain) >= nChains {
		res.PerChain = res.PerChain[:nChains]
	} else {
		old := res.PerChain
		res.PerChain = make([]perfmodel.Result, nChains)
		copy(res.PerChain, old) // keep warm PerNF scratch
	}
	if cap(res.PerNode) >= nNodes {
		res.PerNode = res.PerNode[:nNodes]
	} else {
		res.PerNode = make([]NodeResult, nNodes)
	}
	res.factor = growF(res.factor, nChains)
	res.latency = growF(res.latency, nChains)
	res.llcSum = growF(res.llcSum, nNodes)
	res.fwb = growF(res.fwb, nNodes)
	res.nodeCnt = growI(res.nodeCnt, nNodes)
	if cap(res.errs) >= nChains {
		res.errs = res.errs[:nChains]
	} else {
		res.errs = make([]error, nChains)
	}

	// Node occupancy and node-wide LLC oversubscription.
	for n := 0; n < nNodes; n++ {
		res.llcSum[n] = 0
		res.nodeCnt[n] = 0
	}
	totalNF := 0
	for c := 0; c < nChains; c++ {
		n := assign[c]
		res.nodeCnt[n]++
		for i := range knobs[c] {
			f := knobs[c][i].LLCFraction
			if f < 0 {
				f = 0
			} else if f > 1 {
				f = 1
			}
			res.llcSum[n] += f
		}
		totalNF += len(knobs[c])
	}

	// Effective knobs: chains alone on a node keep the caller's slice
	// (the bit-parity path); co-located chains on an oversubscribed
	// node get a node-wide CAT rescale into scratch.
	res.knobBuf = res.knobBuf[:0]
	if cap(res.knobBuf) < totalNF {
		res.knobBuf = make([]perfmodel.NFKnobs, 0, totalNF)
	}
	if cap(res.knobEff) >= nChains {
		res.knobEff = res.knobEff[:nChains]
	} else {
		res.knobEff = make([][]perfmodel.NFKnobs, nChains)
	}
	for c := 0; c < nChains; c++ {
		n := assign[c]
		if res.nodeCnt[n] <= 1 || res.llcSum[n] <= 1 {
			res.knobEff[c] = knobs[c]
			continue
		}
		start := len(res.knobBuf)
		for i := range knobs[c] {
			k := knobs[c][i]
			f := k.LLCFraction
			if f < 0 {
				f = 0
			} else if f > 1 {
				f = 1
			}
			k.LLCFraction = f / res.llcSum[n]
			res.knobBuf = append(res.knobBuf, k)
		}
		res.knobEff[c] = res.knobBuf[start:len(res.knobBuf):len(res.knobBuf)]
	}

	// Per-chain evaluation — every chain is attempted even when an
	// earlier one fails, so partial per-node results survive. The
	// serial branch avoids the pool closure, keeping the hot path
	// allocation-free.
	if workers == 1 || nChains == 1 {
		for c := 0; c < nChains; c++ {
			res.errs[c] = t.Nodes[assign[c]].Model.EvaluateInto(
				&res.PerChain[c], w.Chains[c].Chain, res.knobEff[c], w.Chains[c].Traffic, opt)
		}
	} else {
		pool.ForEach(nChains, workers, func(c int) error {
			res.errs[c] = t.Nodes[assign[c]].Model.EvaluateInto(
				&res.PerChain[c], w.Chains[c].Chain, res.knobEff[c], w.Chains[c].Traffic, opt)
			return nil
		})
	}
	for c := 0; c < nChains; c++ {
		if res.errs[c] != nil {
			return fmt.Errorf("cluster: chain %d (%s): %w", c, w.Chains[c].Chain.Name, res.errs[c])
		}
	}

	// Node aggregation. One chain: copy its totals (bit-identical to
	// the single-node path). Several: re-run the single-node tail
	// over the union of the chains' busy cores.
	res.NodeEnergyJ = 0
	res.NodesUsed = 0
	for n := 0; n < nNodes; n++ {
		m := &t.Nodes[n].Model
		idleResidual := m.IdleResidualSleep
		if opt.NoSleep {
			idleResidual = m.IdleResidualBusyPoll
		}
		nr := NodeResult{Chains: res.nodeCnt[n]}
		switch {
		case res.nodeCnt[n] == 0:
			// Empty host: no chains, no mgmt threads — only the
			// C-state residual draws power.
			util := idleResidual
			if util > 1 {
				util = 1
			}
			nr.Utilization = util
			nr.PowerWatts = m.Power.Power(util, m.Power.FMin)
			nr.EnergyJoules = nr.PowerWatts * m.WindowSeconds
		case res.nodeCnt[n] == 1:
			for c := 0; c < nChains; c++ {
				if assign[c] != n {
					continue
				}
				r := &res.PerChain[c]
				nr.BusyCores = r.CPUPercent / 100
				nr.Utilization = r.Utilization
				nr.PowerWatts = r.PowerWatts
				nr.EnergyJoules = r.EnergyJoules
				break
			}
		default:
			var busySum, fw float64
			for c := 0; c < nChains; c++ {
				if assign[c] != n {
					continue
				}
				for i := range res.PerChain[c].PerNF {
					busy := res.PerChain[c].PerNF[i].BusyCores
					busySum += busy
					fw += busy * m.Power.ClampFreq(res.knobEff[c][i].FreqGHz)
				}
			}
			meanFreq := m.Power.FMin
			if busySum > 0 {
				meanFreq = fw / busySum
			}
			active := busySum + m.MgmtCores
			if active > float64(m.NumCores) {
				active = float64(m.NumCores)
			}
			util := (active + idleResidual*(float64(m.NumCores)-active)) / float64(m.NumCores)
			if util > 1 {
				util = 1
			}
			nr.BusyCores = busySum
			nr.Utilization = util
			nr.PowerWatts = m.Power.Power(util, meanFreq) + m.StaticCoreWatts*active
			nr.EnergyJoules = nr.PowerWatts * m.WindowSeconds
		}
		res.PerNode[n] = nr
		res.NodeEnergyJ += nr.EnergyJoules
		if res.nodeCnt[n] > 0 {
			res.NodesUsed++
		}
	}

	// Link aggregation: offered cross traffic per node pair, capped
	// at the pair's bandwidth; the cap derates everything riding the
	// pair.
	res.pairs = res.pairs[:0]
	for _, h := range w.Hops {
		na, nb := assign[h.From], assign[h.To]
		if na == nb {
			continue
		}
		if na > nb {
			na, nb = nb, na
		}
		gbps := h.PPS * float64(h.FrameBytes) * 8 / 1e9
		found := false
		for i := range res.pairs {
			if res.pairs[i].a == na && res.pairs[i].b == nb {
				res.pairs[i].gbps += gbps
				found = true
				break
			}
		}
		if !found {
			res.pairs = append(res.pairs, pairAgg{a: na, b: nb, gbps: gbps})
		}
	}
	capGbps := t.Link.BandwidthBps / 1e9
	window := t.Nodes[0].Model.WindowSeconds
	res.CrossGbps = 0
	res.LinkEnergyJ = 0
	for i := range res.pairs {
		carried := res.pairs[i].gbps
		if carried > capGbps {
			carried = capGbps
		}
		res.CrossGbps += carried
		res.LinkEnergyJ += carried * t.Link.WattsPerGbps * window
	}
	// Delivery factor and path latency propagate down the hop DAG
	// (longest-path / min-factor relaxation; Workload.Validate pinned
	// acyclicity, the round bound is a backstop).
	for c := 0; c < nChains; c++ {
		res.factor[c] = 1
		res.latency[c] = 0
	}
	for round := 0; ; round++ {
		changed := false
		for _, h := range w.Hops {
			f := res.factor[h.From]
			lat := res.latency[h.From]
			if assign[h.From] != assign[h.To] {
				f *= pairFactor(res.pairs, capGbps, assign[h.From], assign[h.To])
				lat += t.Link.LatencyNs
			}
			if f < res.factor[h.To] {
				res.factor[h.To] = f
				changed = true
			}
			if lat > res.latency[h.To] {
				res.latency[h.To] = lat
				changed = true
			}
		}
		if !changed {
			break
		}
		if round > nChains {
			return errors.New("cluster: hop graph has a cycle")
		}
	}

	res.ThroughputGbps = 0
	res.SLAGbps = 0
	res.MaxPathLatencyNs = 0
	for c := 0; c < nChains; c++ {
		delivered := res.PerChain[c].ThroughputGbps * res.factor[c]
		res.ThroughputGbps += delivered
		if w.LatencyBudgetNs <= 0 || res.latency[c] <= w.LatencyBudgetNs {
			res.SLAGbps += delivered
		}
		if res.latency[c] > res.MaxPathLatencyNs {
			res.MaxPathLatencyNs = res.latency[c]
		}
	}
	res.EnergyJ = res.NodeEnergyJ + res.LinkEnergyJ
	res.Efficiency = 0
	if res.EnergyJ > 0 {
		res.Efficiency = res.SLAGbps / (res.EnergyJ / 1000)
	}
	return nil
}
