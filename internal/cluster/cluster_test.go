package cluster

import (
	"math"
	"testing"

	"greennfv/internal/perfmodel"
	"greennfv/internal/placement"
)

// workload3 builds a three-chain workload with a two-hop path.
func workload3() Workload {
	return Workload{
		Chains: []ChainLoad{
			{Chain: perfmodel.StandardChain(), Traffic: perfmodel.Traffic{OfferedPPS: 2e6, FrameBytes: 512, Burstiness: 1}},
			{Chain: perfmodel.HeavyChain(), Traffic: perfmodel.Traffic{OfferedPPS: 1e6, FrameBytes: 800, Burstiness: 1}},
			{Chain: perfmodel.LightChain(), Traffic: perfmodel.Traffic{OfferedPPS: 3e6, FrameBytes: 256, Burstiness: 1}},
		},
		Hops: []Hop{
			{From: 0, To: 1, PPS: 1e6, FrameBytes: 512},
			{From: 1, To: 2, PPS: 8e5, FrameBytes: 800},
		},
		LatencyBudgetNs: 1e6,
	}
}

func defaultKnobs(w *Workload) [][]perfmodel.NFKnobs {
	ks := make([][]perfmodel.NFKnobs, len(w.Chains))
	for i := range w.Chains {
		ks[i] = perfmodel.DefaultKnobs(len(w.Chains[i].Chain.NFs))
	}
	return ks
}

// TestSingleNodeReduction pins the tentpole parity invariant: a
// 1-node homogeneous cluster hosting one chain is bit-for-bit the
// existing perfmodel path.
func TestSingleNodeReduction(t *testing.T) {
	topo := Homogeneous(1)
	chain := perfmodel.StandardChain()
	tr := perfmodel.Traffic{OfferedPPS: 2e6, FrameBytes: 512, Burstiness: 1}
	knobs := perfmodel.DefaultKnobs(len(chain.NFs))
	for _, opt := range []perfmodel.EvalOptions{
		{},
		{BusyPoll: true, NoSleep: true},
	} {
		model := perfmodel.Default()
		want, err := model.Evaluate(chain, knobs, tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		w := Workload{Chains: []ChainLoad{{Chain: chain, Traffic: tr}}}
		got, err := topo.EvaluateCluster(&w, [][]perfmodel.NFKnobs{knobs}, []int{0}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.ThroughputGbps != want.ThroughputGbps {
			t.Errorf("throughput %v != single-node %v", got.ThroughputGbps, want.ThroughputGbps)
		}
		if got.EnergyJ != want.EnergyJoules {
			t.Errorf("energy %v != single-node %v", got.EnergyJ, want.EnergyJoules)
		}
		if got.PerNode[0].PowerWatts != want.PowerWatts {
			t.Errorf("power %v != single-node %v", got.PerNode[0].PowerWatts, want.PowerWatts)
		}
		if got.PerNode[0].Utilization != want.Utilization {
			t.Errorf("utilization %v != single-node %v", got.PerNode[0].Utilization, want.Utilization)
		}
		if got.LinkEnergyJ != 0 || got.CrossGbps != 0 || got.MaxPathLatencyNs != 0 {
			t.Errorf("single node has fabric costs: %+v", got)
		}
		if got.SLAGbps != want.ThroughputGbps {
			t.Errorf("SLA-credited %v != delivered %v", got.SLAGbps, want.ThroughputGbps)
		}
	}
}

// TestCrossNodeCosts: splitting a hop across nodes must add link
// energy and latency that co-location avoids.
func TestCrossNodeCosts(t *testing.T) {
	topo := Homogeneous(2)
	w := workload3()
	knobs := defaultKnobs(&w)

	together, err := topo.EvaluateCluster(&w, knobs, []int{0, 0, 0}, perfmodel.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	split, err := topo.EvaluateCluster(&w, knobs, []int{0, 1, 0}, perfmodel.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if together.LinkEnergyJ != 0 {
		t.Errorf("co-located link energy = %v, want 0", together.LinkEnergyJ)
	}
	if split.LinkEnergyJ <= 0 {
		t.Errorf("split link energy = %v, want > 0", split.LinkEnergyJ)
	}
	if split.CrossGbps <= 0 {
		t.Errorf("split cross traffic = %v, want > 0", split.CrossGbps)
	}
	// Chain 2 sits two cross hops downstream.
	if want := 2 * topo.Link.LatencyNs; split.MaxPathLatencyNs != want {
		t.Errorf("path latency = %v, want %v", split.MaxPathLatencyNs, want)
	}
	if split.NodesUsed != 2 || together.NodesUsed != 1 {
		t.Errorf("nodes used: split %d (want 2), together %d (want 1)", split.NodesUsed, together.NodesUsed)
	}
}

// TestLatencyBudgetGatesSLA: a budget below the path latency must
// drop the downstream chains from SLA-credited throughput.
func TestLatencyBudgetGatesSLA(t *testing.T) {
	topo := Homogeneous(2)
	w := workload3()
	w.LatencyBudgetNs = topo.Link.LatencyNs / 2 // any cross hop busts it
	knobs := defaultKnobs(&w)
	res, err := topo.EvaluateCluster(&w, knobs, []int{0, 1, 0}, perfmodel.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLAGbps >= res.ThroughputGbps {
		t.Errorf("SLA-credited %v not below delivered %v despite busted budget",
			res.SLAGbps, res.ThroughputGbps)
	}
	// Chain 0 has no upstream hops and must still be credited.
	if res.SLAGbps != res.PerChain[0].ThroughputGbps {
		t.Errorf("SLA-credited %v, want chain 0's %v", res.SLAGbps, res.PerChain[0].ThroughputGbps)
	}
}

// TestLinkBandwidthDerates: offered cross traffic beyond the pair
// bandwidth must derate delivered throughput downstream.
func TestLinkBandwidthDerates(t *testing.T) {
	topo := Homogeneous(2)
	topo.Link.BandwidthBps = 1e9 // 1 Gb/s: hop 0→1 offers ~4 Gb/s
	w := workload3()
	knobs := defaultKnobs(&w)
	res, err := topo.EvaluateCluster(&w, knobs, []int{0, 1, 1}, perfmodel.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossGbps > 1.0+1e-9 {
		t.Errorf("carried cross traffic %v exceeds 1 Gb/s cap", res.CrossGbps)
	}
	full := res.PerChain[0].ThroughputGbps + res.PerChain[1].ThroughputGbps + res.PerChain[2].ThroughputGbps
	if res.ThroughputGbps >= full {
		t.Errorf("delivered %v not derated below per-chain sum %v", res.ThroughputGbps, full)
	}
}

// TestHeterogeneousAggregation: co-located chains on a small node
// must draw less power than on a big node at equal work, and the
// node-wide LLC rescale must keep co-located chains evaluable.
func TestHeterogeneousAggregation(t *testing.T) {
	topo := Heterogeneous(2) // node 0 big, node 1 small
	w := workload3()
	knobs := defaultKnobs(&w)
	res, err := topo.EvaluateCluster(&w, knobs, []int{1, 1, 1}, perfmodel.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerNode[1].Chains != 3 || res.PerNode[0].Chains != 0 {
		t.Fatalf("occupancy = %+v", res.PerNode)
	}
	// Empty big node idles near its idle power; the loaded small node
	// draws more than its own idle floor but less than the big PMax.
	if res.PerNode[1].PowerWatts <= 55 || res.PerNode[1].PowerWatts >= 330 {
		t.Errorf("small node power %v outside (55, 330)", res.PerNode[1].PowerWatts)
	}
	if res.PerNode[0].PowerWatts >= res.PerNode[1].PowerWatts {
		t.Errorf("empty big node (%v W) not below loaded small node (%v W)",
			res.PerNode[0].PowerWatts, res.PerNode[1].PowerWatts)
	}
}

// TestParallelMatchesSerial is the -race parity gate: the parallel
// evaluation path must be bit-identical to serial.
func TestParallelMatchesSerial(t *testing.T) {
	topo := Heterogeneous(4)
	w := workload3()
	knobs := defaultKnobs(&w)
	assign := []int{0, 1, 2}
	var serial, par Result
	if err := topo.EvaluateClusterInto(&serial, &w, knobs, assign, perfmodel.EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		if err := topo.EvaluateClusterParallelInto(&par, &w, knobs, assign, perfmodel.EvalOptions{}, workers); err != nil {
			t.Fatal(err)
		}
		if par.EnergyJ != serial.EnergyJ || par.ThroughputGbps != serial.ThroughputGbps ||
			par.SLAGbps != serial.SLAGbps || par.LinkEnergyJ != serial.LinkEnergyJ {
			t.Errorf("workers=%d: parallel %+v != serial %+v", workers, par, serial)
		}
		for c := range serial.PerChain {
			if par.PerChain[c].EnergyJoules != serial.PerChain[c].EnergyJoules {
				t.Errorf("workers=%d: chain %d energy differs", workers, c)
			}
		}
	}
}

// TestPartialResultsOnError: a failing chain must not destroy the
// other chains' results (the contract BatchEvaluate does not give).
func TestPartialResultsOnError(t *testing.T) {
	topo := Homogeneous(2)
	w := workload3()
	knobs := defaultKnobs(&w)
	w.Chains[1].Traffic.FrameBytes = 1 // below MinFrame: chain 1 fails inside EvaluateInto
	var res Result
	err := topo.EvaluateClusterParallelInto(&res, &w, knobs, []int{0, 1, 0}, perfmodel.EvalOptions{}, 2)
	if err == nil {
		t.Fatal("want error for bad chain")
	}
	if res.PerChain[0].ThroughputGbps <= 0 || res.PerChain[2].ThroughputGbps <= 0 {
		t.Errorf("healthy chains lost their partial results: %+v, %+v",
			res.PerChain[0], res.PerChain[2])
	}
}

// TestEvaluateClusterAllocs is the satellite alloc gate: steady-state
// cluster evaluation must average ≤ 1 allocation per node.
func TestEvaluateClusterAllocs(t *testing.T) {
	for _, n := range []int{1, 4, 8} {
		topo := Heterogeneous(n)
		w := workload3()
		knobs := defaultKnobs(&w)
		assign := make([]int, len(w.Chains))
		for c := range assign {
			assign[c] = c % n
		}
		var res Result
		// Warm the scratch.
		if err := topo.EvaluateClusterInto(&res, &w, knobs, assign, perfmodel.EvalOptions{}); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := topo.EvaluateClusterInto(&res, &w, knobs, assign, perfmodel.EvalOptions{}); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > float64(n) {
			t.Errorf("n=%d: %v allocs/run, want <= %d", n, allocs, n)
		}
	}
}

// TestValidation covers topology and workload validation.
func TestValidation(t *testing.T) {
	empty := Topology{}
	if err := empty.Validate(); err == nil {
		t.Error("empty topology validated")
	}
	mixed := Homogeneous(2)
	mixed.Nodes[1].Model.WindowSeconds = 5
	if err := mixed.Validate(); err == nil {
		t.Error("mismatched windows validated")
	}
	het := Heterogeneous(8)
	if err := het.Validate(); err != nil {
		t.Errorf("preset failed validation: %v", err)
	}

	w := workload3()
	if err := w.Validate(); err != nil {
		t.Errorf("good workload: %v", err)
	}
	cyc := workload3()
	cyc.Hops = append(cyc.Hops, Hop{From: 2, To: 0, PPS: 1, FrameBytes: 64})
	if err := cyc.Validate(); err == nil {
		t.Error("cyclic hop graph validated")
	}
	dup := workload3()
	dup.Chains[1].Chain.Name = dup.Chains[0].Chain.Name
	if err := dup.Validate(); err == nil {
		t.Error("duplicate chain names validated")
	}
}

// TestPlacementProblem: the derived instance must be solvable and
// must pull hop-linked chains together.
func TestPlacementProblem(t *testing.T) {
	topo := Heterogeneous(4)
	w := workload3()
	p := w.PlacementProblem(&topo)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 4 || len(p.Chains) != 3 || len(p.Affinities) != 2 {
		t.Fatalf("derived problem shape: %d nodes, %d chains, %d affinities",
			len(p.Nodes), len(p.Chains), len(p.Affinities))
	}
	sol, err := placement.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.CrossPPS != 0 {
		t.Errorf("FFD+swap left %v PPS crossing nodes on an easy instance", sol.CrossPPS)
	}
	if math.IsNaN(sol.CrossPPS) {
		t.Error("NaN cross traffic")
	}
}
