// Package cluster generalizes the single-node GreenNFV model to a
// heterogeneous multi-node fleet with service-function-chain routing
// between hosts — the "multi-node datacenter scale-out" ROADMAP item,
// following the joint placement + path-allocation formulation of
// Tajiki et al. (arXiv:1710.02611).
//
// A Topology is a list of NodeSpecs (each a full perfmodel.Config, so
// core counts, LLC geometry, and power envelopes differ per host)
// joined by one LinkModel (per-node-pair bandwidth, one-way hop
// latency, transfer watts per Gb/s). A Workload is a list of chains
// with offered traffic plus a Hop DAG: inter-chain packet flows that
// cross the fabric whenever placement splits their endpoints.
//
// EvaluateClusterInto is the cluster analogue of
// perfmodel.EvaluateInto and keeps its contract: caller-owned Result
// with capacity-reused scratch, no steady-state allocations, and
// bit-exact determinism. Cluster energy is Σ node power × window plus
// the link transfer cost; delivered throughput derates when a node
// pair's cross traffic exceeds the link bandwidth, and chains whose
// accumulated cross-node latency exceeds the workload's budget are
// excluded from SLA-credited throughput.
//
// # Single-node parity
//
// A node hosting exactly one chain evaluates that chain's knobs
// through the node model untouched and copies the chain totals as
// the node totals, so a 1-node Homogeneous topology is bit-for-bit
// the existing single-node path (pinned by TestSingleNodeReduction
// here and the ClusterEnv parity test in internal/env). Co-located
// chains get a node-wide CAT rescale of their LLC fractions when the
// node's cache is oversubscribed, and the node's power aggregates
// every hosted chain's busy cores through the same utilization tail
// the single-node model uses.
//
// # Concurrency
//
// EvaluateClusterParallelInto fans per-chain evaluation over a
// bounded pool. Unlike perfmodel.BatchEvaluate's stop-on-first-error
// contract, every chain is always attempted so partial per-node
// results survive an individual chain failure; aggregation is serial
// either way, making the parallel path bit-identical to the serial
// one (pinned under -race).
package cluster
