package cluster

import (
	"fmt"

	"greennfv/internal/hw/cache"
	"greennfv/internal/hw/power"
	"greennfv/internal/perfmodel"
)

// DefaultLink models a 40GbE leaf fabric: 40 Gb/s per node pair,
// 50 µs one-way hop (NIC + ToR switch + wire), 2.5 W per Gb/s
// transferred (both NICs plus the switch port share).
func DefaultLink() LinkModel {
	return LinkModel{BandwidthBps: 40e9, LatencyNs: 50e3, WattsPerGbps: 2.5}
}

// SmallNodeModel is the heterogeneous fleet's second host class: an
// edge-class box with half the cores, a 12-way LLC, and a lower
// idle/max power envelope than the paper's testbed server.
func SmallNodeModel() perfmodel.Config {
	m := perfmodel.Default()
	m.NumCores = 8
	m.Cache = cache.Config{Ways: 12, WayBytes: 1 << 20, DDIOWays: 2, ColdMissRate: 0.02}
	m.Power = power.Model{PIdle: 55, PMax: 170, H: 1.4, FMin: 1.2, FMax: 2.1, FreqExp: 2.4}
	m.StaticCoreWatts = 4
	return m
}

// Homogeneous builds an n-node cluster of the paper's testbed server
// (perfmodel.Default) joined by the default fabric. Homogeneous(1)
// is the single-node model: EvaluateCluster on it reproduces the
// existing path bit-for-bit.
func Homogeneous(n int) Topology {
	t := Topology{Link: DefaultLink()}
	for i := 0; i < n; i++ {
		t.Nodes = append(t.Nodes, NodeSpec{
			Name:  fmt.Sprintf("node%02d", i),
			Model: perfmodel.Default(),
		})
	}
	return t
}

// Heterogeneous builds an n-node cluster alternating the testbed
// server (even indices) with the edge-class SmallNodeModel (odd
// indices) — the placement-sensitive fleet the cluster figures sweep.
func Heterogeneous(n int) Topology {
	t := Topology{Link: DefaultLink()}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			t.Nodes = append(t.Nodes, NodeSpec{
				Name:  fmt.Sprintf("big%02d", i),
				Model: perfmodel.Default(),
			})
		} else {
			t.Nodes = append(t.Nodes, NodeSpec{
				Name:  fmt.Sprintf("small%02d", i),
				Model: SmallNodeModel(),
			})
		}
	}
	return t
}
