package atomicio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// MagicLen is the required magic length: 8 bytes, by convention an
// ASCII tag ending in a format version digit (e.g. "GNFVCKP1").
const MagicLen = 8

// headerLen is magic + uint64 payload length + uint32 CRC.
const headerLen = MagicLen + 8 + 4

// tempPattern returns the os.CreateTemp pattern for a destination
// base name. The dot prefix keeps in-flight temps out of globs and
// directory listings; the base name ties a leftover temp to the file
// whose writer crashed, which is what lets Sweep target only its own.
func tempPattern(base string) string { return "." + base + ".tmp-*" }

// WriteFile atomically writes payload to path under the given magic:
// temp file in the same directory, fsync, rename, best-effort
// directory sync. On error the temp file is removed; path is either
// untouched or fully replaced, never torn.
func WriteFile(path, magic string, payload []byte) error {
	if len(magic) != MagicLen {
		return fmt.Errorf("atomicio: magic %q must be %d bytes", magic, MagicLen)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tempPattern(filepath.Base(path)))
	if err != nil {
		return fmt.Errorf("atomicio: temp file: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	var header [headerLen]byte
	copy(header[:MagicLen], magic)
	binary.BigEndian.PutUint64(header[MagicLen:MagicLen+8], uint64(len(payload)))
	binary.BigEndian.PutUint32(header[MagicLen+8:], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(header[:]); err != nil {
		return cleanup(fmt.Errorf("atomicio: write: %w", err))
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(fmt.Errorf("atomicio: write: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("atomicio: sync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: publish: %w", err)
	}
	// Persist the rename itself; best-effort (some filesystems refuse
	// directory fsync).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile reads and validates a framed file: magic, length and CRC
// must all match before the payload is returned.
func ReadFile(path, magic string) ([]byte, error) {
	if len(magic) != MagicLen {
		return nil, fmt.Errorf("atomicio: magic %q must be %d bytes", magic, MagicLen)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("atomicio: read: %w", err)
	}
	if len(raw) < headerLen || string(raw[:MagicLen]) != magic {
		return nil, errors.New("atomicio: bad magic")
	}
	n := binary.BigEndian.Uint64(raw[MagicLen : MagicLen+8])
	if uint64(len(raw)-headerLen) != n {
		return nil, fmt.Errorf("atomicio: truncated file: header says %d payload bytes, have %d",
			n, len(raw)-headerLen)
	}
	payload := raw[headerLen:]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(raw[MagicLen+8:headerLen]); got != want {
		return nil, fmt.Errorf("atomicio: corrupt file: CRC %08x, want %08x", got, want)
	}
	return payload, nil
}

// Sweep removes stale temp files a crashed writer of path may have
// left behind (a SIGKILL between CreateTemp and the rename). Call it
// from the process that owns path, at startup, before the first
// WriteFile — never while another writer of the same path may be
// mid-write. Missing directory or no leftovers is not an error; the
// count of removed files is returned.
func Sweep(path string) (int, error) {
	matches, err := filepath.Glob(filepath.Join(filepath.Dir(path), tempPattern(filepath.Base(path))))
	if err != nil {
		return 0, fmt.Errorf("atomicio: sweep: %w", err)
	}
	removed := 0
	for _, m := range matches {
		if os.Remove(m) == nil {
			removed++
		}
	}
	return removed, nil
}

// StrayTemps lists leftover temp files for path without removing
// them — the hook tests use to assert a suite leaves nothing behind.
func StrayTemps(path string) ([]string, error) {
	return filepath.Glob(filepath.Join(filepath.Dir(path), tempPattern(filepath.Base(path))))
}
