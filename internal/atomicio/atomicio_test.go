package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const testMagic = "GNFVTST1"

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state")
	payload := []byte("the quick brown fox")
	if err := WriteFile(path, testMagic, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload round-trip: got %q want %q", got, payload)
	}
	// Overwrite is atomic and replaces the content.
	if err := WriteFile(path, testMagic, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ = ReadFile(path, testMagic); string(got) != "v2" {
		t.Errorf("overwrite not visible: %q", got)
	}
	// No temp droppings after successful writes.
	stray, err := StrayTemps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(stray) != 0 {
		t.Errorf("stray temp files after clean writes: %v", stray)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state")
	if err := WriteFile(path, testMagic, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"flipped payload byte": append(append([]byte(nil), raw[:len(raw)-2]...), raw[len(raw)-2]^0x40, raw[len(raw)-1]),
		"truncated":            raw[:len(raw)-3],
		"wrong magic":          append([]byte("XXXXXXX1"), raw[MagicLen:]...),
		"too short":            raw[:headerLen-1],
		"garbage":              []byte("not a framed file at all........"),
	}
	for name, data := range cases {
		bad := filepath.Join(t.TempDir(), "bad")
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(bad, testMagic); err == nil {
			t.Errorf("%s: ReadFile accepted corrupt file", name)
		}
	}
}

func TestWriteRejectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state")
	if err := WriteFile(path, "short", nil); err == nil {
		t.Error("5-byte magic accepted")
	}
	if _, err := ReadFile(path, "toolongmagic"); err == nil {
		t.Error("12-byte magic accepted")
	}
}

func TestSweepRemovesOnlyOwnTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")
	other := filepath.Join(dir, "other")
	// Simulate two crashed writers and one innocent bystander file.
	for _, name := range []string{
		".ckpt.tmp-123", ".ckpt.tmp-456", ".other.tmp-1", "ckpt.real",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, err := Sweep(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("swept %d files, want 2", n)
	}
	if stray, _ := StrayTemps(path); len(stray) != 0 {
		t.Errorf("temps survive sweep: %v", stray)
	}
	if stray, _ := StrayTemps(other); len(stray) != 1 {
		t.Errorf("sweep removed another file's temps (left %v)", stray)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt.real")); err != nil {
		t.Errorf("sweep touched a non-temp file: %v", err)
	}
	// Sweeping a path in a missing directory is not an error.
	if _, err := Sweep(filepath.Join(dir, "nope", "ckpt")); err != nil {
		t.Errorf("sweep of missing dir: %v", err)
	}
}
