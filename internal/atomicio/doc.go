// Package atomicio is the crash-safe file persistence shared by the
// training checkpoints (internal/rl/apex) and the serving control
// plane's controller state (internal/serve): framed, checksummed
// payloads written atomically so a SIGKILL at any instant leaves
// either the previous file or the new one, never a torn hybrid.
//
// # File format
//
// An 8-byte caller-chosen magic (which doubles as a format version),
// the big-endian uint64 payload length, the IEEE CRC32 of the
// payload, then the payload. ReadFile rejects a wrong magic, a length
// that disagrees with the file size, and a CRC mismatch — the
// torn-read case of a file copied off a dying machine — before the
// caller ever decodes a byte.
//
// # Write protocol
//
// WriteFile creates a temp file next to the destination (same
// directory, so the rename cannot cross filesystems), writes header
// and payload, fsyncs, closes, renames over the destination, and
// best-effort fsyncs the directory. A writer killed mid-write leaves
// only a stale temp file; Sweep(path) removes such leftovers and is
// called by the owning process on startup (single-writer-per-file is
// the contract — two live writers sharing one path would sweep each
// other's in-flight temps).
//
// # Concurrency and determinism
//
// Functions here are stateless and safe for concurrent use on
// distinct paths. Output bytes are a pure function of (magic,
// payload) plus the rename, so checkpoint files are byte-reproducible
// for identical payloads.
package atomicio
