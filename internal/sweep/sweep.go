package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"greennfv/internal/cluster"
	"greennfv/internal/control"
	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/placement"
	"greennfv/internal/pool"
	"greennfv/internal/sla"
)

// Tier is one named SLA grid axis value.
type Tier struct {
	Name string
	SLA  sla.SLA
}

// Mix is one named traffic-mix grid axis value.
type Mix struct {
	Name       string
	Flows      []env.FlowLoad
	LoadJitter float64
}

// scaleFlows returns the flow set with every packet rate multiplied
// by f and burstiness multiplied by b.
func scaleFlows(flows []env.FlowLoad, f, b float64) []env.FlowLoad {
	out := make([]env.FlowLoad, len(flows))
	for i, fl := range flows {
		fl.PPS *= f
		fl.Burstiness *= b
		out[i] = fl
	}
	return out
}

// DefaultTiers returns the paper's SLA instances as grid tiers: both
// Maximum-Throughput energy budgets (2000 J and 3300 J), both
// Minimum-Energy throughput floors (7.5 and 7 Gbps), and the
// unconstrained Energy-Efficiency target.
func DefaultTiers() ([]Tier, error) {
	maxT2000, err := sla.NewMaxThroughput(2000)
	if err != nil {
		return nil, err
	}
	maxT3300, err := sla.NewMaxThroughput(3300)
	if err != nil {
		return nil, err
	}
	minE75, err := sla.NewMinEnergy(7.5)
	if err != nil {
		return nil, err
	}
	minE70, err := sla.NewMinEnergy(7)
	if err != nil {
		return nil, err
	}
	return []Tier{
		{Name: "maxT-2000J", SLA: maxT2000},
		{Name: "maxT-3300J", SLA: maxT3300},
		{Name: "minE-7.5G", SLA: minE75},
		{Name: "minE-7.0G", SLA: minE70},
		{Name: "ee", SLA: sla.NewEnergyEfficiency()},
	}, nil
}

// DefaultMixes returns the traffic-mix axis: the paper's standard
// five-flow workload, a light variant (60% of the offered rate) and a
// heavy, burstier one (130% rate, doubled burstiness, more jitter).
func DefaultMixes() []Mix {
	std := env.StandardWorkload()
	return []Mix{
		{Name: "standard", Flows: std, LoadJitter: 0.03},
		{Name: "light", Flows: scaleFlows(std, 0.6, 1), LoadJitter: 0.03},
		{Name: "heavy", Flows: scaleFlows(std, 1.3, 2), LoadJitter: 0.06},
	}
}

// Topo is one topology grid axis value: how many nodes the cell's
// environment spans. Nodes <= 1 selects the original single-node
// environment path (and skips the placement axis — the row's
// placement field stays empty); larger values build a heterogeneous
// cluster (cluster.Heterogeneous) of that many nodes.
type Topo struct {
	Name  string
	Nodes int
}

// Placement is one placement-policy grid axis value for multi-node
// topologies. A nil Policy selects the DRL placement head: the agent's
// action vector carries per-chain placement logits instead of a
// pinned analytic assignment.
type Placement struct {
	Name   string
	Policy placement.Policy
}

// DefaultTopos returns the topology axis of the cluster sweep: the
// original single node plus heterogeneous 4- and 8-node clusters.
func DefaultTopos() []Topo {
	return []Topo{
		{Name: "single", Nodes: 1},
		{Name: "hetero-4", Nodes: 4},
		{Name: "hetero-8", Nodes: 8},
	}
}

// DefaultPlacements returns the placement axis: the DRL head and both
// analytic baselines.
func DefaultPlacements() []Placement {
	return []Placement{
		{Name: "drl-head", Policy: nil},
		{Name: placement.FFDSwap{}.Name(), Policy: placement.FFDSwap{}},
		{Name: placement.Relaxation{}.Name(), Policy: placement.Relaxation{}},
	}
}

// Config sizes a sweep.
type Config struct {
	// Seeds, Tiers and Mixes span the grid; every combination is one
	// cell.
	Seeds []int64
	Tiers []Tier
	Mixes []Mix
	// Topos optionally adds the topology axis; empty keeps the
	// original single-node grid (and the original rows, byte for
	// byte). Placements crosses multi-node topologies with placement
	// policies; empty defaults multi-node cells to the DRL head.
	Topos      []Topo
	Placements []Placement
	// TrainSteps / Actors budget each cell's Ape-X training run;
	// ControlSteps is the post-training measurement horizon.
	TrainSteps   int
	Actors       int
	ControlSteps int
	// ParallelTrain trains each cell with the concurrent pipeline
	// (fast, non-deterministic) instead of round-robin.
	ParallelTrain bool
	// Workers bounds concurrently running cells (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the standard grid — 2 seeds × 5 SLA tiers ×
// 3 traffic mixes = 30 cells — at the given budgets.
func DefaultConfig(trainSteps, actors, controlSteps int) (Config, error) {
	tiers, err := DefaultTiers()
	if err != nil {
		return Config{}, err
	}
	return Config{
		Seeds:        []int64{17, 43},
		Tiers:        tiers,
		Mixes:        DefaultMixes(),
		TrainSteps:   trainSteps,
		Actors:       actors,
		ControlSteps: controlSteps,
	}, nil
}

// Validate reports whether the grid is runnable.
func (c Config) Validate() error {
	switch {
	case len(c.Seeds) == 0 || len(c.Tiers) == 0 || len(c.Mixes) == 0:
		return errors.New("sweep: need at least one seed, tier and mix")
	case c.TrainSteps <= 0 || c.Actors <= 0 || c.ControlSteps <= 0:
		return errors.New("sweep: all budgets must be positive")
	}
	return nil
}

// Cells reports the grid size: single-node topologies contribute one
// cell per (seed, tier, mix), multi-node ones one cell per placement.
func (c Config) Cells() int {
	per := 1
	if len(c.Topos) > 0 {
		pl := len(c.Placements)
		if pl == 0 {
			pl = 1
		}
		per = 0
		for _, t := range c.Topos {
			if t.Nodes <= 1 {
				per++
			} else {
				per += pl
			}
		}
	}
	return len(c.Seeds) * len(c.Tiers) * len(c.Mixes) * per
}

// Result is one grid cell's outcome — one JSON row.
type Result struct {
	Seed      int64  `json:"seed"`
	SLA       string `json:"sla"`
	SLADetail string `json:"sla_detail"`
	Traffic   string `json:"traffic"`
	// Topology identity, set only when the grid has a topology axis;
	// single-node rows of a topology-less grid omit all three.
	Topology  string `json:"topology,omitempty"`
	Nodes     int    `json:"nodes,omitempty"`
	Placement string `json:"placement,omitempty"`

	TrainSteps   int `json:"train_steps"`
	Actors       int `json:"actors"`
	ControlSteps int `json:"control_steps"`

	// Settled means over the last quarter of the control horizon.
	ThroughputGbps float64 `json:"throughput_gbps"`
	EnergyJ        float64 `json:"energy_j"`
	Efficiency     float64 `json:"efficiency_gbps_per_kj"`
	// SLA satisfaction over the whole control horizon.
	ViolationRate float64 `json:"violation_rate"`
	MeanViolation float64 `json:"mean_violation"`
	// Cluster-only extras (zero and omitted on single-node rows).
	NodesUsed   int     `json:"nodes_used,omitempty"`
	LinkEnergyJ float64 `json:"link_energy_j,omitempty"`

	TrainSeconds float64 `json:"train_seconds"`
	Error        string  `json:"error,omitempty"`
}

// factory builds the cell's environment factory for one mix.
func factory(s sla.SLA, m Mix) control.EnvFactory {
	return func(seed int64, opts perfmodel.EvalOptions) (*env.Env, error) {
		return env.New(env.Config{
			Model:      perfmodel.Default(),
			Chain:      perfmodel.StandardChain(),
			Bounds:     perfmodel.DefaultBounds(),
			SLA:        s,
			Flows:      m.Flows,
			LoadJitter: m.LoadJitter,
			Options:    opts,
			Seed:       seed,
		})
	}
}

// clusterEnvFactory builds the multi-node cell's environment family:
// the FigCluster workload (six preset chains in one service-function
// path, 150 µs end-to-end budget) on a heterogeneous topology, with
// each chain carrying the cell's traffic mix at half rate — the same
// scaling StandardClusterChains applies to the standard workload, so
// the "standard" mix reproduces it exactly.
func clusterEnvFactory(s sla.SLA, m Mix, nodes int, pol placement.Policy) control.ClusterFactory {
	return func(seed int64) (*env.ClusterEnv, error) {
		chains, hops := env.StandardClusterChains(6)
		for i := range chains {
			chains[i].Flows = scaleFlows(m.Flows, 0.5, 1)
		}
		return env.NewCluster(env.ClusterConfig{
			Topology:        cluster.Heterogeneous(nodes),
			Chains:          chains,
			Hops:            hops,
			LatencyBudgetNs: 150e3,
			Bounds:          perfmodel.DefaultBounds(),
			SLA:             s,
			LoadJitter:      m.LoadJitter,
			Seed:            seed,
			Placement:       pol,
		})
	}
}

// runClusterCell trains and measures one multi-node grid cell. The
// cluster trainer is always round-robin (ParallelTrain is ignored —
// the concurrent pipeline requires single-node environments), so
// every cluster row is deterministic given its seed.
func runClusterCell(cfg Config, seed int64, tier Tier, mix Mix, topo Topo, pl Placement) (Result, error) {
	r := Result{
		Seed: seed, SLA: tier.Name, SLADetail: tier.SLA.Describe(),
		Traffic: mix.Name, Topology: topo.Name, Nodes: topo.Nodes,
		Placement: pl.Name, TrainSteps: cfg.TrainSteps, Actors: cfg.Actors,
		ControlSteps: cfg.ControlSteps,
	}
	g := control.NewClusterGreenNFV(tier.SLA, cfg.TrainSteps, cfg.Actors, seed)
	f := clusterEnvFactory(tier.SLA, mix, topo.Nodes, pl.Policy)
	start := time.Now()
	if err := g.Prepare(f); err != nil {
		return r, fmt.Errorf("prepare: %w", err)
	}
	r.TrainSeconds = time.Since(start).Seconds()

	e, err := f(seed + 1000)
	if err != nil {
		return r, fmt.Errorf("measure env: %w", err)
	}
	tracker := sla.NewTracker(tier.SLA)
	settle := cfg.ControlSteps / 4
	if settle < 1 {
		settle = 1
	}
	var tput, energy, link float64
	for i := 0; i < cfg.ControlSteps; i++ {
		res, err := g.Step(e)
		if err != nil {
			return r, fmt.Errorf("control step %d: %w", i, err)
		}
		tracker.Observe(res.ThroughputGbps, res.EnergyJoules)
		if i >= cfg.ControlSteps-settle {
			tput += res.ThroughputGbps
			energy += res.EnergyJoules
			link += e.LastCluster().LinkEnergyJ
			r.NodesUsed = e.LastCluster().NodesUsed
		}
	}
	r.ThroughputGbps = tput / float64(settle)
	r.EnergyJ = energy / float64(settle)
	if r.EnergyJ > 0 {
		r.Efficiency = r.ThroughputGbps / (r.EnergyJ / 1000)
	}
	r.LinkEnergyJ = link / float64(settle)
	r.ViolationRate = tracker.ViolationRate()
	r.MeanViolation = tracker.MeanViolation()
	return r, nil
}

// runCell trains and measures one single-node grid cell. The topo
// argument only stamps row identity: an explicit single-node topology
// axis value names the row, the implicit (topology-less) grid leaves
// the fields empty so existing rows stay byte-identical.
func runCell(cfg Config, seed int64, tier Tier, mix Mix, topo Topo) (Result, error) {
	r := Result{
		Seed: seed, SLA: tier.Name, SLADetail: tier.SLA.Describe(),
		Traffic: mix.Name, TrainSteps: cfg.TrainSteps, Actors: cfg.Actors,
		ControlSteps: cfg.ControlSteps,
	}
	if topo.Name != "" {
		r.Topology = topo.Name
		r.Nodes = 1
	}
	g := control.NewGreenNFV(tier.SLA, cfg.TrainSteps, cfg.Actors, seed)
	g.Parallel = cfg.ParallelTrain
	f := factory(tier.SLA, mix)
	start := time.Now()
	if err := g.Prepare(f); err != nil {
		return r, fmt.Errorf("prepare: %w", err)
	}
	r.TrainSeconds = time.Since(start).Seconds()

	// Measure the trained policy: run the control loop, track SLA
	// satisfaction on every interval, and report the settled means of
	// the last quarter of the horizon (the Fig 9 idiom).
	e, err := f(seed+1000, g.Options())
	if err != nil {
		return r, fmt.Errorf("measure env: %w", err)
	}
	tracker := sla.NewTracker(tier.SLA)
	settle := cfg.ControlSteps / 4
	if settle < 1 {
		settle = 1
	}
	var tput, energy float64
	for i := 0; i < cfg.ControlSteps; i++ {
		res, err := g.Step(e)
		if err != nil {
			return r, fmt.Errorf("control step %d: %w", i, err)
		}
		tracker.Observe(res.ThroughputGbps, res.EnergyJoules)
		if i >= cfg.ControlSteps-settle {
			tput += res.ThroughputGbps
			energy += res.EnergyJoules
		}
	}
	r.ThroughputGbps = tput / float64(settle)
	r.EnergyJ = energy / float64(settle)
	if r.EnergyJ > 0 {
		r.Efficiency = r.ThroughputGbps / (r.EnergyJ / 1000)
	}
	r.ViolationRate = tracker.ViolationRate()
	r.MeanViolation = tracker.MeanViolation()
	return r, nil
}

// Run executes every grid cell across the shared bounded worker pool
// and returns one Result per cell in deterministic seed-major order
// regardless of scheduling. A failing cell records its error in the
// row and does not stop the rest of the grid; the lowest failing
// cell's error is also returned after all cells ran.
func Run(cfg Config) ([]Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type cell struct {
		seed int64
		tier Tier
		mix  Mix
		topo Topo
		pl   Placement
	}
	topos := cfg.Topos
	if len(topos) == 0 {
		// Implicit single-node grid: identity fields stay empty so the
		// rows match the pre-topology schema byte for byte.
		topos = []Topo{{}}
	}
	pls := cfg.Placements
	if len(pls) == 0 {
		pls = []Placement{{Name: "drl-head"}}
	}
	var cells []cell
	for _, seed := range cfg.Seeds {
		for _, tier := range cfg.Tiers {
			for _, mix := range cfg.Mixes {
				for _, topo := range topos {
					if topo.Nodes <= 1 {
						cells = append(cells, cell{seed, tier, mix, topo, Placement{}})
						continue
					}
					for _, pl := range pls {
						cells = append(cells, cell{seed, tier, mix, topo, pl})
					}
				}
			}
		}
	}
	results := make([]Result, len(cells))
	// A failing cell must not stop the rest of the grid — every row
	// carries its own Error field and the JSONL writer emits all of
	// them — so cell errors are recorded in the rows rather than
	// returned to the pool (pool.ForEach stops claiming new work once
	// a closure errors). workers <= 0 selects GOMAXPROCS inside
	// ForEach.
	pool.ForEach(len(cells), cfg.Workers, func(i int) error {
		var r Result
		var err error
		if cells[i].topo.Nodes > 1 {
			r, err = runClusterCell(cfg, cells[i].seed, cells[i].tier, cells[i].mix, cells[i].topo, cells[i].pl)
		} else {
			r, err = runCell(cfg, cells[i].seed, cells[i].tier, cells[i].mix, cells[i].topo)
		}
		if err != nil {
			r.Error = err.Error()
		}
		results[i] = r
		return nil
	})
	for i := range results {
		if results[i].Error != "" {
			return results, fmt.Errorf("sweep: cell %d (%s/%s/seed %d): %s",
				i, cells[i].tier.Name, cells[i].mix.Name, cells[i].seed, results[i].Error)
		}
	}
	return results, nil
}

// WriteJSONL emits one compact JSON row per result.
func WriteJSONL(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(&results[i]); err != nil {
			return err
		}
	}
	return nil
}
