// Package sweep is the multi-seed, multi-scenario experiment harness:
// it trains one GreenNFV controller per (seed × SLA tier × traffic
// mix) grid cell over the shared bounded worker pool and emits one
// JSON row per cell, so sensitivity studies — how robust is each SLA
// model across seeds and offered loads — and new scenarios run from
// one entry point (cmd/experiments -sweep) instead of ad-hoc figure
// drivers.
//
// # JSONL row schema
//
// WriteJSONL emits one compact JSON object per grid cell (one line
// per cell, seed-major order). The schema is a stable contract —
// downstream figure drivers consume these rows — and changes to it
// must stay backward-compatible (add fields, never rename or repurpose
// them). Fields, in emission order:
//
//   - "seed" (int): the training seed of this cell.
//   - "sla" (string): the SLA tier's grid name, e.g. "maxT-2000J",
//     "minE-7.5G", "ee" (see DefaultTiers).
//   - "sla_detail" (string): the human-readable SLA description from
//     sla.SLA.Describe, e.g. "max throughput s.t. energy <= 2000 J".
//   - "traffic" (string): the traffic mix's grid name — "standard",
//     "light", "heavy" (see DefaultMixes).
//   - "train_steps" (int): Ape-X training budget of the cell.
//   - "actors" (int): Ape-X actor count used in training.
//   - "control_steps" (int): post-training measurement horizon.
//   - "throughput_gbps" (float): settled mean throughput over the
//     last quarter of the control horizon (the Figure 9 idiom).
//   - "energy_j" (float): settled mean energy per 10 s measurement
//     window, same settling rule.
//   - "efficiency_gbps_per_kj" (float): throughput_gbps /
//     (energy_j/1000) — the paper's λ; 0 when energy_j is 0.
//   - "violation_rate" (float): fraction of ALL control intervals
//     (not just settled ones) whose measurement violated the SLA.
//   - "mean_violation" (float): mean violation magnitude over
//     violating intervals (sla.Tracker.MeanViolation); 0 when none.
//   - "train_seconds" (float): wall-clock training time of the cell.
//   - "error" (string, omitted when empty): the cell's failure, if
//     any; a failing cell still emits its row with the identity and
//     budget fields filled.
//
// # Concurrency and determinism
//
// Cells run concurrently (Config.Workers, 0 = GOMAXPROCS) over
// internal/pool, but results are returned — and rows emitted — in
// deterministic seed-major grid order regardless of scheduling.
// With the default round-robin trainer each cell is deterministic
// given its seed; Config.ParallelTrain trades that determinism for
// speed. A failing cell records its error in its own row without
// stopping the rest of the grid.
package sweep
