// Package sweep is the multi-seed, multi-scenario experiment harness:
// it trains one GreenNFV controller per (seed × SLA tier × traffic
// mix) grid cell over the shared bounded worker pool and emits one
// JSON row per cell, so sensitivity studies — how robust is each SLA
// model across seeds and offered loads — and new scenarios run from
// one entry point (cmd/experiments -sweep) instead of ad-hoc figure
// drivers.
//
// # JSONL row schema
//
// WriteJSONL emits one compact JSON object per grid cell (one line
// per cell, seed-major order). The schema is a stable contract —
// downstream figure drivers consume these rows — and changes to it
// must stay backward-compatible (add fields, never rename or repurpose
// them). Fields, in emission order:
//
//   - "seed" (int): the training seed of this cell.
//   - "sla" (string): the SLA tier's grid name, e.g. "maxT-2000J",
//     "minE-7.5G", "ee" (see DefaultTiers).
//   - "sla_detail" (string): the human-readable SLA description from
//     sla.SLA.Describe, e.g. "max throughput s.t. energy <= 2000 J".
//   - "traffic" (string): the traffic mix's grid name — "standard",
//     "light", "heavy" (see DefaultMixes).
//   - "topology" (string, omitted when the grid has no topology
//     axis): the Topo axis value's name — "single", "hetero-4",
//     "hetero-8" with DefaultTopos. Rows of a grid with empty
//     Config.Topos never carry this key, so pre-topology consumers
//     see unchanged rows.
//   - "nodes" (int, omitted with "topology"): the cell's cluster
//     size; 1 for an explicit single-node topology axis value.
//   - "placement" (string, omitted on single-node rows): the
//     placement-policy axis value for multi-node cells — "drl-head"
//     (the agent's per-chain placement logit head), "ffd+swap", or
//     "relax+round" (see DefaultPlacements). Single-node cells skip
//     the placement axis entirely: there is nowhere to place.
//   - "train_steps" (int): Ape-X training budget of the cell.
//   - "actors" (int): Ape-X actor count used in training.
//   - "control_steps" (int): post-training measurement horizon.
//   - "throughput_gbps" (float): settled mean throughput over the
//     last quarter of the control horizon (the Figure 9 idiom).
//   - "energy_j" (float): settled mean energy per 10 s measurement
//     window, same settling rule.
//   - "efficiency_gbps_per_kj" (float): throughput_gbps /
//     (energy_j/1000) — the paper's λ; 0 when energy_j is 0.
//   - "violation_rate" (float): fraction of ALL control intervals
//     (not just settled ones) whose measurement violated the SLA.
//   - "mean_violation" (float): mean violation magnitude over
//     violating intervals (sla.Tracker.MeanViolation); 0 when none.
//   - "nodes_used" (int, omitted on single-node rows): how many
//     cluster nodes host at least one chain on the last measured
//     interval (cluster.Result.NodesUsed) — the consolidation signal.
//   - "link_energy_j" (float, omitted on single-node rows): settled
//     mean inter-node transfer energy per measurement window, the
//     link share of "energy_j" (cluster.Result.LinkEnergyJ).
//   - "train_seconds" (float): wall-clock training time of the cell.
//   - "error" (string, omitted when empty): the cell's failure, if
//     any; a failing cell still emits its row with the identity and
//     budget fields filled.
//
// # Concurrency and determinism
//
// Cells run concurrently (Config.Workers, 0 = GOMAXPROCS) over
// internal/pool, but results are returned — and rows emitted — in
// deterministic seed-major grid order regardless of scheduling.
// With the default round-robin trainer each cell is deterministic
// given its seed; Config.ParallelTrain trades that determinism for
// speed (multi-node cells ignore it — the cluster trainer is always
// round-robin, so cluster rows stay deterministic regardless). A
// failing cell records its error in its own row without stopping the
// rest of the grid.
//
// # Topology and placement axes
//
// Config.Topos adds cluster size as a grid axis (cmd/experiments
// -sweep -sweep-cluster): each multi-node Topo crosses with every
// Config.Placements entry and trains control.ClusterGreenNFV on a
// heterogeneous cluster hosting the FigCluster six-chain
// service-function path, with each chain carrying the cell's traffic
// mix at half rate. Single-node Topo entries run the original
// environment path unchanged. An empty Topos keeps the original grid
// and the original rows, byte for byte.
package sweep
