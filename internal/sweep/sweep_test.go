package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cfg, err := DefaultConfig(100, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if cfg.Cells() < 24 {
		t.Errorf("default grid has %d cells, want >= 24", cfg.Cells())
	}
	bad := cfg
	bad.Seeds = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty seed axis accepted")
	}
	bad = cfg
	bad.TrainSteps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero train budget accepted")
	}
}

// TestSweepFailingCellDoesNotStopGrid pins Run's contract under the
// stop-on-error worker pool: a failing cell records its error in its
// own row, every other cell still trains and produces a real row,
// and the lowest failing cell's error is returned after the grid
// completes. (Regression test: returning cell errors to pool.ForEach
// would halt the grid and emit zero-valued rows.)
func TestSweepFailingCellDoesNotStopGrid(t *testing.T) {
	tiers, err := DefaultTiers()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seeds: []int64{17},
		Tiers: tiers[:1],
		// The first mix has no flows, so its cell fails environment
		// construction; the second is healthy and must still run.
		Mixes:        []Mix{{Name: "broken"}, DefaultMixes()[0]},
		TrainSteps:   60,
		Actors:       1,
		ControlSteps: 4,
	}
	results, err := Run(cfg)
	if err == nil {
		t.Fatal("failing cell's error not returned")
	}
	if !strings.Contains(err.Error(), "cell 0") || !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q does not identify the failing cell", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Error == "" {
		t.Error("failing cell's row carries no error")
	}
	if results[1].Error != "" {
		t.Errorf("healthy cell's row has error %q", results[1].Error)
	}
	if results[1].Traffic != "standard" || results[1].ThroughputGbps <= 0 {
		t.Errorf("healthy cell did not run after the failure: %+v", results[1])
	}
}

// TestSweepSmallGrid trains a tiny grid end to end and checks one
// well-formed JSON row lands per cell, in deterministic seed-major
// order.
func TestSweepSmallGrid(t *testing.T) {
	tiers, err := DefaultTiers()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seeds:        []int64{17},
		Tiers:        tiers[:2],
		Mixes:        DefaultMixes()[:2],
		TrainSteps:   120,
		Actors:       1,
		ControlSteps: 4,
	}
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != cfg.Cells() {
		t.Fatalf("got %d results, want %d", len(results), cfg.Cells())
	}
	wantOrder := []string{
		tiers[0].Name + "/standard",
		tiers[0].Name + "/light",
		tiers[1].Name + "/standard",
		tiers[1].Name + "/light",
	}
	for i, r := range results {
		if r.Error != "" {
			t.Errorf("cell %d failed: %s", i, r.Error)
		}
		if got := r.SLA + "/" + r.Traffic; got != wantOrder[i] {
			t.Errorf("cell %d = %s, want %s", i, got, wantOrder[i])
		}
		if r.ThroughputGbps <= 0 || r.EnergyJ <= 0 {
			t.Errorf("cell %d: tput=%v energy=%v", i, r.ThroughputGbps, r.EnergyJ)
		}
		if r.Seed != 17 || r.TrainSteps != 120 {
			t.Errorf("cell %d: budgets not recorded: %+v", i, r)
		}
		if r.TrainSeconds <= 0 {
			t.Errorf("cell %d: train_seconds = %v", i, r.TrainSeconds)
		}
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(results) {
		t.Fatalf("JSONL emitted %d rows, want %d", len(lines), len(results))
	}
	for _, line := range lines {
		var row Result
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %q: %v", line, err)
		}
	}
}

func TestScaleFlows(t *testing.T) {
	mixes := DefaultMixes()
	var std, light float64
	for _, f := range mixes[0].Flows {
		std += f.PPS
	}
	for _, f := range mixes[1].Flows {
		light += f.PPS
	}
	if light >= std {
		t.Errorf("light mix offers %v pps, standard %v — want lighter", light, std)
	}
}
