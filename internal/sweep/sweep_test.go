package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cfg, err := DefaultConfig(100, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if cfg.Cells() < 24 {
		t.Errorf("default grid has %d cells, want >= 24", cfg.Cells())
	}
	bad := cfg
	bad.Seeds = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty seed axis accepted")
	}
	bad = cfg
	bad.TrainSteps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero train budget accepted")
	}
}

// TestSweepSmallGrid trains a tiny grid end to end and checks one
// well-formed JSON row lands per cell, in deterministic seed-major
// order.
func TestSweepSmallGrid(t *testing.T) {
	tiers, err := DefaultTiers()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seeds:        []int64{17},
		Tiers:        tiers[:2],
		Mixes:        DefaultMixes()[:2],
		TrainSteps:   120,
		Actors:       1,
		ControlSteps: 4,
	}
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != cfg.Cells() {
		t.Fatalf("got %d results, want %d", len(results), cfg.Cells())
	}
	wantOrder := []string{
		tiers[0].Name + "/standard",
		tiers[0].Name + "/light",
		tiers[1].Name + "/standard",
		tiers[1].Name + "/light",
	}
	for i, r := range results {
		if r.Error != "" {
			t.Errorf("cell %d failed: %s", i, r.Error)
		}
		if got := r.SLA + "/" + r.Traffic; got != wantOrder[i] {
			t.Errorf("cell %d = %s, want %s", i, got, wantOrder[i])
		}
		if r.ThroughputGbps <= 0 || r.EnergyJ <= 0 {
			t.Errorf("cell %d: tput=%v energy=%v", i, r.ThroughputGbps, r.EnergyJ)
		}
		if r.Seed != 17 || r.TrainSteps != 120 {
			t.Errorf("cell %d: budgets not recorded: %+v", i, r)
		}
		if r.TrainSeconds <= 0 {
			t.Errorf("cell %d: train_seconds = %v", i, r.TrainSeconds)
		}
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(results) {
		t.Fatalf("JSONL emitted %d rows, want %d", len(lines), len(results))
	}
	for _, line := range lines {
		var row Result
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %q: %v", line, err)
		}
	}
}

func TestScaleFlows(t *testing.T) {
	mixes := DefaultMixes()
	var std, light float64
	for _, f := range mixes[0].Flows {
		std += f.PPS
	}
	for _, f := range mixes[1].Flows {
		light += f.PPS
	}
	if light >= std {
		t.Errorf("light mix offers %v pps, standard %v — want lighter", light, std)
	}
}
