package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cfg, err := DefaultConfig(100, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if cfg.Cells() < 24 {
		t.Errorf("default grid has %d cells, want >= 24", cfg.Cells())
	}
	bad := cfg
	bad.Seeds = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty seed axis accepted")
	}
	bad = cfg
	bad.TrainSteps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero train budget accepted")
	}
}

// TestSweepFailingCellDoesNotStopGrid pins Run's contract under the
// stop-on-error worker pool: a failing cell records its error in its
// own row, every other cell still trains and produces a real row,
// and the lowest failing cell's error is returned after the grid
// completes. (Regression test: returning cell errors to pool.ForEach
// would halt the grid and emit zero-valued rows.)
func TestSweepFailingCellDoesNotStopGrid(t *testing.T) {
	tiers, err := DefaultTiers()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seeds: []int64{17},
		Tiers: tiers[:1],
		// The first mix has no flows, so its cell fails environment
		// construction; the second is healthy and must still run.
		Mixes:        []Mix{{Name: "broken"}, DefaultMixes()[0]},
		TrainSteps:   60,
		Actors:       1,
		ControlSteps: 4,
	}
	results, err := Run(cfg)
	if err == nil {
		t.Fatal("failing cell's error not returned")
	}
	if !strings.Contains(err.Error(), "cell 0") || !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q does not identify the failing cell", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Error == "" {
		t.Error("failing cell's row carries no error")
	}
	if results[1].Error != "" {
		t.Errorf("healthy cell's row has error %q", results[1].Error)
	}
	if results[1].Traffic != "standard" || results[1].ThroughputGbps <= 0 {
		t.Errorf("healthy cell did not run after the failure: %+v", results[1])
	}
}

// TestSweepSmallGrid trains a tiny grid end to end and checks one
// well-formed JSON row lands per cell, in deterministic seed-major
// order.
func TestSweepSmallGrid(t *testing.T) {
	tiers, err := DefaultTiers()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seeds:        []int64{17},
		Tiers:        tiers[:2],
		Mixes:        DefaultMixes()[:2],
		TrainSteps:   120,
		Actors:       1,
		ControlSteps: 4,
	}
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != cfg.Cells() {
		t.Fatalf("got %d results, want %d", len(results), cfg.Cells())
	}
	wantOrder := []string{
		tiers[0].Name + "/standard",
		tiers[0].Name + "/light",
		tiers[1].Name + "/standard",
		tiers[1].Name + "/light",
	}
	for i, r := range results {
		if r.Error != "" {
			t.Errorf("cell %d failed: %s", i, r.Error)
		}
		if got := r.SLA + "/" + r.Traffic; got != wantOrder[i] {
			t.Errorf("cell %d = %s, want %s", i, got, wantOrder[i])
		}
		if r.ThroughputGbps <= 0 || r.EnergyJ <= 0 {
			t.Errorf("cell %d: tput=%v energy=%v", i, r.ThroughputGbps, r.EnergyJ)
		}
		if r.Seed != 17 || r.TrainSteps != 120 {
			t.Errorf("cell %d: budgets not recorded: %+v", i, r)
		}
		if r.TrainSeconds <= 0 {
			t.Errorf("cell %d: train_seconds = %v", i, r.TrainSeconds)
		}
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(results) {
		t.Fatalf("JSONL emitted %d rows, want %d", len(lines), len(results))
	}
	for _, line := range lines {
		var row Result
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %q: %v", line, err)
		}
	}
}

// TestSweepClusterGrid runs a tiny grid with the topology and
// placement axes and pins the row contract: single-node cells keep
// the original path but carry the topology name, multi-node cells
// cross with placements and fill the cluster-only fields, and the
// topology-less grid emits rows without any of the new keys.
func TestSweepClusterGrid(t *testing.T) {
	tiers, err := DefaultTiers()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seeds:        []int64{17},
		Tiers:        tiers[4:], // ee
		Mixes:        DefaultMixes()[:1],
		Topos:        []Topo{{Name: "single", Nodes: 1}, {Name: "hetero-2", Nodes: 2}},
		Placements:   DefaultPlacements()[:2], // drl-head, ffd+swap
		TrainSteps:   60,
		Actors:       1,
		ControlSteps: 4,
	}
	if got := cfg.Cells(); got != 3 {
		t.Fatalf("Cells() = %d, want 3 (1 single + 2 placements)", got)
	}
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d rows, want 3", len(results))
	}
	single := results[0]
	if single.Topology != "single" || single.Nodes != 1 || single.Placement != "" {
		t.Errorf("single-node row identity wrong: %+v", single)
	}
	if single.NodesUsed != 0 || single.LinkEnergyJ != 0 {
		t.Errorf("single-node row has cluster extras: %+v", single)
	}
	wantPl := []string{"drl-head", "ffd+swap"}
	for i, r := range results[1:] {
		if r.Topology != "hetero-2" || r.Nodes != 2 || r.Placement != wantPl[i] {
			t.Errorf("cluster row %d identity wrong: %+v", i, r)
		}
		if r.ThroughputGbps <= 0 || r.EnergyJ <= 0 || r.NodesUsed < 1 || r.NodesUsed > 2 {
			t.Errorf("cluster row %d not measured: %+v", i, r)
		}
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[1], `"topology":"hetero-2"`) ||
		!strings.Contains(lines[1], `"placement":"drl-head"`) {
		t.Errorf("cluster row missing axis keys: %s", lines[1])
	}

	// Back-compat: a topology-less grid must emit rows without any of
	// the new keys.
	plain := cfg
	plain.Topos, plain.Placements = nil, nil
	plainRows, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteJSONL(&buf, plainRows); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"topology"`, `"nodes"`, `"placement"`, `"nodes_used"`, `"link_energy_j"`} {
		if strings.Contains(buf.String(), key) {
			t.Errorf("topology-less row leaks key %s: %s", key, buf.String())
		}
	}
}

func TestScaleFlows(t *testing.T) {
	mixes := DefaultMixes()
	var std, light float64
	for _, f := range mixes[0].Flows {
		std += f.PPS
	}
	for _, f := range mixes[1].Flows {
		light += f.PPS
	}
	if light >= std {
		t.Errorf("light mix offers %v pps, standard %v — want lighter", light, std)
	}
}
