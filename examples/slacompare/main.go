// slacompare reproduces the paper's headline comparison (Figure 9
// scenario) through the public API: all three GreenNFV SLA models
// against the non-learning baselines, under the same workload.
//
// Expected shape (paper §5): MaxT ≈ 4.4x baseline throughput at ~33%
// less energy; MinE ≈ 3x at ~half the energy; EE ≈ 4x.
package main

import (
	"fmt"
	"log"

	"greennfv"
)

func main() {
	log.SetFlags(0)

	sys, err := greennfv.NewSystem(greennfv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name string
		m    greennfv.Measurement
	}
	var rows []row

	for _, b := range []greennfv.BaselineName{greennfv.Baseline, greennfv.Heuristic, greennfv.EEPstate} {
		m, err := sys.MeasureBaseline(b)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{string(b), m})
	}

	maxT, err := greennfv.MaxThroughputSLA(2000)
	if err != nil {
		log.Fatal(err)
	}
	minE, err := greennfv.MinEnergySLA(7.5)
	if err != nil {
		log.Fatal(err)
	}
	agreements := []struct {
		name string
		sla  greennfv.SLA
	}{
		{"GreenNFV(MinE)", minE},
		{"GreenNFV(MaxT)", maxT},
		{"GreenNFV(EE)", greennfv.EfficiencySLA()},
	}
	for _, a := range agreements {
		fmt.Printf("training %s — %s ...\n", a.name, a.sla.Describe())
		policy, err := sys.Train(a.sla, greennfv.TrainOptions{Steps: 2500, Actors: 4})
		if err != nil {
			log.Fatal(err)
		}
		m, err := sys.Measure(policy)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{a.name, m})
	}

	base := rows[0].m
	fmt.Printf("\n%-16s %-8s %-10s %-9s %-9s %-6s\n",
		"model", "Gbps", "energy J", "speedup", "energy%", "SLA ok")
	for _, r := range rows {
		fmt.Printf("%-16s %-8.2f %-10.0f %-9.2f %-9.0f %-6v\n",
			r.name, r.m.ThroughputGbps, r.m.EnergyJ,
			r.m.ThroughputGbps/base.ThroughputGbps,
			r.m.EnergyJ/base.EnergyJ*100,
			r.m.SLASatisfied)
	}
}
