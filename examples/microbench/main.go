// microbench reproduces the paper's §3 resource-impact analysis
// (Figures 1–4): the individual effect of LLC allocation, CPU
// frequency, batch size and DMA buffer size on NF chain throughput
// and energy.
package main

import (
	"log"
	"os"

	"greennfv/internal/experiments"
)

func main() {
	log.SetFlags(0)

	for _, run := range []func() (*experiments.Table, error){
		experiments.Fig1, experiments.Fig2, experiments.Fig3, experiments.Fig4,
	} {
		t, err := run()
		if err != nil {
			log.Fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
