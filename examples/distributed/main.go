// distributed runs the Ape-X architecture across process boundaries
// the way the paper's six-node deployment does: a central learner
// served over net/rpc on localhost, with several actor goroutines
// connecting as RPC clients, each with its own environment and
// exploration intensity.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"

	"greennfv/internal/env"
	"greennfv/internal/perfmodel"
	"greennfv/internal/rl/apex"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

func main() {
	log.SetFlags(0)

	mkEnv := func(seed int64) (*env.Env, error) {
		return env.New(env.Config{
			Model:      perfmodel.Default(),
			Chain:      perfmodel.StandardChain(),
			Bounds:     perfmodel.DefaultBounds(),
			SLA:        sla.NewEnergyEfficiency(),
			Flows:      env.StandardWorkload(),
			LoadJitter: 0.03,
			Seed:       seed,
		})
	}
	probe, err := mkEnv(0)
	if err != nil {
		log.Fatal(err)
	}

	agentCfg := ddpg.DefaultConfig(probe.StateDim(), probe.ActionDim())
	agentCfg.Seed = 7
	learnerAgent, err := ddpg.New(agentCfg)
	if err != nil {
		log.Fatal(err)
	}
	learner, err := apex.NewLearner(learnerAgent)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := apex.Serve(learner, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("central learner listening on %s\n", srv.Addr())

	const actors = 3
	const stepsPerActor = 400
	var wg sync.WaitGroup
	for id := 0; id < actors; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := apex.Dial(srv.Addr())
			if err != nil {
				log.Printf("actor %d: %v", id, err)
				return
			}
			defer client.Close()
			e, err := mkEnv(int64(100 + id))
			if err != nil {
				log.Printf("actor %d: %v", id, err)
				return
			}
			aCfg := agentCfg
			aCfg.Seed = int64(200 + id)
			aCfg.OUSigma = 0.3 * (1 + 0.5*float64(id)) // exploration ladder
			actor, err := apex.NewActor(apex.ActorConfig{
				ID: id, Env: e, AgentConfig: aCfg, PushEvery: 8, SyncEvery: 16,
			})
			if err != nil {
				log.Printf("actor %d: %v", id, err)
				return
			}
			for i := 0; i < stepsPerActor; i++ {
				if _, _, err := actor.Step(client); err != nil {
					log.Printf("actor %d step %d: %v", id, i, err)
					return
				}
			}
			fmt.Printf("actor %d finished %d steps\n", id, actor.Steps())
		}(id)
	}

	// Learner loop: update while actors stream experience, pacing
	// updates against the experience actually received so the policy
	// does not overfit the first few transitions while actors are
	// still warming up.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	updates := 0
	for {
		select {
		case <-done:
			// Final updates on the last experience.
			for i := 0; i < 200; i++ {
				learner.LearnStep(8)
				updates++
			}
			pushes, transitions := learner.Stats()
			fmt.Printf("\nlearner: %d updates, %d pushes, %d transitions in replay\n",
				updates, pushes, transitions)

			// Evaluate the learned policy greedily.
			e, err := mkEnv(999)
			if err != nil {
				log.Fatal(err)
			}
			state := e.Reset(999)
			var last float64
			var lastE float64
			for i := 0; i < 5; i++ {
				action := learner.Agent().Greedy(state)
				next, _, info, err := e.Step(action)
				if err != nil {
					log.Fatal(err)
				}
				state = next
				last, lastE = info.ThroughputGbps, info.EnergyJoules
			}
			fmt.Printf("greedy policy: %.2f Gbps at %.0f J per window\n", last, lastE)
			return
		default:
			_, transitions := learner.Stats()
			if updates < 2*transitions {
				learner.LearnStep(8)
				updates++
			} else {
				runtime.Gosched()
			}
		}
	}
}
