// distributed runs the Ape-X architecture across real process
// boundaries the way the paper's six-node deployment does: the
// trainer serves the central learner over net/rpc and spawns three
// actor OS processes (cmd/apexactor), each rebuilding its own
// environment from the shipped JSON spec and climbing the exploration
// ladder by rank. Experience flows in over RPC; parameter broadcasts
// flow back; the round drains gracefully when the update budget is
// spent.
//
// Run from anywhere in the module (the actors are spawned via
// `go run greennfv/cmd/apexactor`, so the toolchain must be on PATH):
//
//	go run ./examples/distributed
//
// For separate machines, build cmd/apexactor, set ListenAddr to a
// routable address, leave SpawnRemote empty, and start the actors by
// hand — see the README's "Distributed training" section.
package main

import (
	"fmt"
	"log"

	"greennfv/internal/rl/apex"
	"greennfv/internal/rl/ddpg"
	"greennfv/internal/sla"
)

func main() {
	log.SetFlags(0)

	spec := &apex.ActorSpec{
		// Environment: the paper's standard chain and five-flow
		// workload under the unconstrained energy-efficiency SLA.
		SLA:        sla.NewEnergyEfficiency(),
		LoadJitter: 0.03,
		EnvSeed:    100,
	}

	cfg := apex.DefaultTrainerConfig(1200)
	cfg.RemoteActors = 3
	cfg.SpawnRemote = []string{"go", "run", "greennfv/cmd/apexactor"}
	cfg.RemoteSpec = spec
	cfg.AgentConfig = ddpg.DefaultConfig(0, 0) // dims filled from the spec's env
	cfg.AgentConfig.Seed = 7

	trainer, err := apex.NewTrainer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training: 1 learner + %d actor processes, %d total env steps\n",
		cfg.RemoteActors, cfg.TotalSteps)
	if err := trainer.Run(); err != nil {
		log.Fatal(err)
	}

	pushes, transitions := trainer.Learner().Stats()
	fmt.Printf("\nlearner: %d updates, %d pushes, %d transitions in replay\n",
		trainer.Learner().Agent().LearnSteps(), pushes, transitions)
	stats := trainer.RemoteActorStats()
	for rank := 0; rank < cfg.RemoteActors; rank++ {
		st := stats[rank]
		fmt.Printf("  actor %d: %d pushes, %d transitions, last param version %d\n",
			rank, st.Pushes, st.Transitions, st.LastVersion)
	}

	// Evaluate the learned policy greedily on a fresh environment.
	e, err := spec.BuildEnv(999)
	if err != nil {
		log.Fatal(err)
	}
	res, err := trainer.GreedyEval(e, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy policy: %.2f Gbps at %.0f J per window\n",
		res.ThroughputGbps, res.EnergyJoules)
}
