// Quickstart: train a GreenNFV Energy-Efficiency policy on the
// paper's standard chain and five-flow workload, then compare it to
// the untuned baseline.
package main

import (
	"fmt"
	"log"

	"greennfv"
)

func main() {
	log.SetFlags(0)

	sys, err := greennfv.NewSystem(greennfv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("measuring the untuned baseline (performance governor, busy-poll)...")
	base, err := sys.MeasureBaseline(greennfv.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  baseline: %.2f Gbps at %.0f J per window (%.2f Gbps/kJ)\n\n",
		base.ThroughputGbps, base.EnergyJ, base.EfficiencyGbpsPerKJ)

	fmt.Println("training GreenNFV with the Energy-Efficiency SLA (max T/E)...")
	policy, err := sys.Train(greennfv.EfficiencySLA(), greennfv.TrainOptions{Steps: 2000, Actors: 4})
	if err != nil {
		log.Fatal(err)
	}

	m, err := sys.Measure(policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  GreenNFV: %.2f Gbps at %.0f J per window (%.2f Gbps/kJ)\n\n",
		m.ThroughputGbps, m.EnergyJ, m.EfficiencyGbpsPerKJ)

	fmt.Printf("speedup: %.1fx at %.0f%% of baseline energy — efficiency gain %.1fx\n",
		m.ThroughputGbps/base.ThroughputGbps,
		m.EnergyJ/base.EnergyJ*100,
		m.EfficiencyGbpsPerKJ/base.EfficiencyGbpsPerKJ)
}
