#!/bin/sh
# checkdocs.sh asserts that every package under internal/ and cmd/
# (and the root package) carries a package comment — the architecture
# contract this repo documents in per-package doc.go files; commands
# document themselves with a "// Command <name> ..." comment on main.
# CI runs this after gofmt; it fails listing the undocumented
# packages.
set -eu
cd "$(dirname "$0")/.."

fail=0
for dir in $(go list -f '{{.Dir}}' ./internal/... ./cmd/... ./); do
    ok=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -q '^// \(Package\|Command\) ' "$f"; then
            ok=1
            break
        fi
    done
    if [ "$ok" -eq 0 ]; then
        echo "missing package comment: $dir" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "checkdocs: add a package comment (doc.go, or '// Command ...' for a cmd) to the packages above" >&2
    exit 1
fi
echo "checkdocs: every internal and cmd package has a package comment"
